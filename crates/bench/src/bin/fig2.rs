//! Experiment `fig2` — regenerates Figure 2 of Section 5.2:
//! input size `N` vs certificate size `|C|` (measured as FindGap count,
//! exactly as the paper does) for the Star, 3-path, and Tree queries on
//! three scaled SNAP-like datasets.
//!
//! Usage: `cargo run --release -p minesweeper-bench --bin fig2
//! [--scale k] [--p prob] [--seed s] [--json FILE]`. `--scale` multiplies
//! the built-in per-dataset divisors (1 reproduces the default
//! laptop-scale setup). With `--json` the deterministic work counters
//! (FindGap = the |C| proxy, probe points, Z) and ungated wall times are
//! written as flat JSON for CI's `bench_gate` regression check.

use minesweeper_bench::{arg_opt, arg_or, human, human_time, timed, BenchRecord, Table};
use minesweeper_cds::ProbeMode;
use minesweeper_core::minesweeper_join;
use minesweeper_workloads::queries::Instance;
use minesweeper_workloads::snap_like::{GraphDataset, EPINIONS, LIVEJOURNAL, ORKUT};
use minesweeper_workloads::{star_query, three_path_query, tree_query};

fn main() {
    let scale: u64 = arg_or("--scale", 1);
    let p: f64 = arg_or("--p", 0.001);
    let seed: u64 = arg_or("--seed", 20140618);
    let json = arg_opt("--json");
    let mut record = BenchRecord::new();
    // Per-dataset base divisors chosen so the default run is laptop-sized
    // (~100–250K edges per graph).
    let configs = [(ORKUT, 1024u64), (EPINIONS, 4), (LIVEJOURNAL, 1024)];
    println!(
        "Figure 2 reproduction: input size (N) vs certificate size (|C|)\n\
         |C| measured by counting FindGap operations (Section 5.2).\n\
         Datasets are Chung-Lu stand-ins for the SNAP graphs (DESIGN.md).\n"
    );
    let mut table = Table::new(&[
        "Query", "Dataset", "N", "|C|", "N/|C|", "Z", "probes", "time",
    ]);
    for (profile, base) in configs {
        let ds = GraphDataset::generate(profile, base * scale, seed);
        let n_edges = ds.edge_count();
        println!(
            "generated {:<16} scale 1/{:<7} nodes={} edges={}",
            profile.name,
            base * scale,
            human(ds.nodes as u64),
            human(n_edges as u64),
        );
        for (qname, inst) in [
            ("Star", star_query(&ds.edges, ds.nodes, p, seed)),
            ("3-path", three_path_query(&ds.edges, ds.nodes, p, seed)),
            ("Tree", tree_query(&ds.edges, ds.nodes, p, seed)),
        ] {
            let Instance { db, query } = inst;
            let n = db.total_tuples() as u64;
            let (res, t) = timed(|| minesweeper_join(&db, &query, ProbeMode::Chain).unwrap());
            let c = res.stats.certificate_estimate();
            let tag = format!(
                "fig2_{}_{}",
                qname.to_ascii_lowercase().replace('-', ""),
                profile.name.to_ascii_lowercase()
            );
            record.metric(format!("{tag}_findgap"), c);
            record.metric(format!("{tag}_probes"), res.stats.probe_points);
            record.metric(format!("{tag}_z"), res.stats.outputs);
            record.time_ms(&tag, t);
            table.row(&[
                qname.to_string(),
                profile.name.to_string(),
                human(n),
                human(c),
                format!("{:.0}x", n as f64 / c.max(1) as f64),
                human(res.stats.outputs),
                human(res.stats.probe_points),
                human_time(t),
            ]);
        }
    }
    println!();
    table.print();
    println!(
        "\nPaper's shape: |C| is 3-4 orders of magnitude below N on every\n\
         query/dataset pair (e.g. Star on Orkut: N=352M vs |C|=214K)."
    );
    if let Some(path) = json {
        record.write_json(&path).expect("write --json file");
        println!("wrote {path}");
    }
}
