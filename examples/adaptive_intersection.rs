//! Instance-optimal set intersection (Appendix H): the work tracks the
//! *difficulty* of the instance — its certificate — not its size.
//!
//! Inverted-index engines intersect posting lists whose overlap structure
//! varies wildly; an adaptive algorithm should finish in O(1) when the
//! lists are separated and only pay linear time when the data genuinely
//! interleaves.
//!
//! Run with `cargo run --release --example adaptive_intersection`.

use minesweeper_join::core::set_intersection;
use minesweeper_join::storage::TrieRelation;
use minesweeper_join::workloads::intersection::{blocks, disjoint_ranges, interleaved, needle};

fn run(label: &str, sets: &[TrieRelation]) {
    let refs: Vec<&TrieRelation> = sets.iter().collect();
    let n: usize = sets.iter().map(|s| s.len()).sum();
    let res = set_intersection(&refs);
    println!(
        "{label:<34} N = {n:>7}  Z = {:>4}  probes = {:>7}  findgaps = {:>7}",
        res.stats.outputs, res.stats.probe_points, res.stats.find_gap_calls
    );
}

fn main() {
    let n = 1 << 15;
    println!("set intersection over {}-element lists:\n", n);
    run("disjoint ranges (|C| = O(1))", &disjoint_ranges(2, n));
    run("separated needle (|C| = O(1))", &needle(3, n));
    run("blocks of 1024 (|C| = Θ(N/1024))", &blocks(n, 1024));
    run("blocks of 32 (|C| = Θ(N/32))", &blocks(n, 32));
    run("fully interleaved (|C| = Θ(N))", &interleaved(2, n));
    println!(
        "\nSame input sizes, wildly different work: the probe counts track\n\
         the optimal certificate of each instance (Theorem H.4), from O(1)\n\
         on separated data to Θ(N) only when every element needs a\n\
         comparison."
    );
}
