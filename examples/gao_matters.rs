//! The global attribute order changes the certificate — and the work — by
//! polynomial factors (Examples B.3/B.4 and B.6/B.7 of the paper).
//!
//! Minesweeper requires indexes consistent with one GAO; this example
//! re-indexes the same data under two orders and shows the measured
//! certificate collapsing.
//!
//! Run with `cargo run --release --example gao_matters`.

use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::{choose_gao, minesweeper_join, reindex_for_gao};
use minesweeper_join::workloads::examples::example_b3;

fn main() {
    // Q = R(A,C) ⋈ S(B,C); R pairs every A with even C values, S pairs
    // every B with odd ones — the join is empty, but only the C column
    // "knows" it.
    let n = 150;
    let inst = example_b3(n);
    println!(
        "Q = R(A,C) ⋈ S(B,C), |R| = |S| = {}, output is empty.\n",
        n * n
    );

    // GAO (A, B, C): every (a, b) pair must be ruled out separately —
    // the optimal certificate is Θ(N²) (Example B.3).
    let slow = minesweeper_join(&inst.db, &inst.query, ProbeMode::General).unwrap();
    println!(
        "GAO (A,B,C):  probes = {:>8}  findgaps = {:>8}   (Θ(N²) certificate)",
        slow.stats.probe_points, slow.stats.find_gap_calls
    );

    // GAO (C, A, B): one interleaving chain on C suffices — Θ(N)
    // (Example B.4). This order is also a nested elimination order, so
    // chain mode applies.
    let (db2, q2) = reindex_for_gao(&inst.db, &inst.query, &[2, 0, 1]).unwrap();
    let fast = minesweeper_join(&db2, &q2, ProbeMode::Chain).unwrap();
    println!(
        "GAO (C,A,B):  probes = {:>8}  findgaps = {:>8}   (Θ(N) certificate)",
        fast.stats.probe_points, fast.stats.find_gap_calls
    );

    let speedup = slow.stats.probe_points as f64 / fast.stats.probe_points.max(1) as f64;
    println!("\nprobe-count ratio: {speedup:.0}x — the GAO is a physical-design choice");

    // choose_gao discovers the good order automatically: the query is
    // β-acyclic and (C,A,B) is a nested elimination order.
    let choice = choose_gao(&inst.query, 8);
    println!(
        "choose_gao picks order {:?} with mode {:?}",
        choice.order, choice.mode
    );
    assert_eq!(choice.mode, ProbeMode::Chain);
}
