//! The `Engine` front door in one tour: typed (string) columns behind the
//! dictionary encoder, prepared statements with plan + re-index caching,
//! literals, the unified `ExecOptions` dispatch, and the structured
//! explain.
//!
//! Run with `cargo run --example engine_quickstart`.

use minesweeper_join::engine::{Engine, ExecOptions};
use minesweeper_join::storage::{ColumnType, Value};

fn main() {
    let mut engine = Engine::new();

    // A typed relation: string columns are interned into the integer
    // domain at load time; the probe loop never sees a string.
    engine
        .add_relation(
            "Flight",
            &[ColumnType::Str, ColumnType::Str, ColumnType::Int],
            [
                vec![Value::from("jfk"), Value::from("lhr"), Value::Int(7)],
                vec![Value::from("jfk"), Value::from("lhr"), Value::Int(9)],
                vec![Value::from("lhr"), Value::from("nrt"), Value::Int(12)],
                vec![Value::from("sfo"), Value::from("jfk"), Value::Int(6)],
                vec![Value::from("sfo"), Value::from("lhr"), Value::Int(11)],
            ],
        )
        .unwrap();
    // TSV loading infers column types (all-integer columns stay native).
    engine.load_tsv("Hub", "jfk\nlhr\n").unwrap();

    // Prepare once: parse + plan + (when the GAO demands) re-index, all
    // cached by query shape.
    let stmt = engine
        .prepare("Flight(a, b, d1), Hub(b), Flight(b, c, d2)")
        .unwrap();
    println!("columns: {:?}", stmt.columns());
    let result = stmt.execute(&ExecOptions::default().with_stats()).unwrap();
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join("\t"));
    }
    let stats = result.stats.expect("requested");
    println!(
        "probe points: {} (findgap calls — the |C| proxy: {})",
        stats.probe_points, stats.find_gap_calls
    );

    // Repeat prepares hit the statement cache: zero planning, zero
    // re-indexing, identical plan identity.
    let again = engine
        .prepare("Flight(x, y, p), Hub(y), Flight(y, z, q)")
        .unwrap();
    assert!(again.cache_hit());
    println!(
        "cache: hit={} plan_id={}",
        again.cache_hit(),
        again.plan_id()
    );

    // Literals constrain a position to a constant (and stay out of the
    // output); the same options struct drives every evaluator.
    let to_lhr = engine.prepare("Flight(a, \"lhr\", d)").unwrap();
    for algo in ["minesweeper", "minesweeper-par", "leapfrog", "naive"] {
        let rows = to_lhr
            .execute(&ExecOptions::default().with_algo(algo).with_threads(2))
            .unwrap()
            .rows;
        println!("{algo}: {} flights into lhr", rows.len());
    }

    // The structured explain serializes for dashboards and diffing.
    let explain = to_lhr.explain(&ExecOptions::default()).unwrap();
    println!("{}", explain.render());
    println!("{}", explain.to_json());
}
