//! The headline demonstration: on the Appendix J instances, Minesweeper
//! beats every worst-case-optimal algorithm by an unbounded factor.
//!
//! The instance hides an `O(mM)` certificate inside a path query whose
//! relations hold `Θ(mM²)` tuples; Yannakakis, Leapfrog Triejoin, and the
//! NPRR generic join all read the grids, while Minesweeper's gap
//! constraints skip them.
//!
//! Run with `cargo run --release --example beyond_worst_case`.

use std::time::Instant;

use minesweeper_join::baselines::{generic_join, leapfrog_triejoin, yannakakis};
use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::minesweeper_join;
use minesweeper_join::workloads::appendix_j::hidden_certificate_instance;

fn main() {
    let m = 4;
    println!(
        "path query with {m} atoms; chunked relations hide an O(mM)\n\
         certificate inside Θ(mM²) tuples (Appendix J).\n"
    );
    println!(
        "{:>5} {:>9} | {:>12} {:>12} {:>12} {:>12}",
        "M", "N", "minesweeper", "yannakakis", "lftj", "nprr"
    );
    for chunk in [16, 32, 64, 128] {
        let inst = hidden_certificate_instance(m, chunk);
        let n = inst.db.total_tuples();
        let mut times = Vec::new();
        let start = Instant::now();
        let ms = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        times.push(start.elapsed());
        let start = Instant::now();
        let ya = yannakakis(&inst.db, &inst.query).unwrap();
        times.push(start.elapsed());
        let start = Instant::now();
        let lf = leapfrog_triejoin(&inst.db, &inst.query).unwrap();
        times.push(start.elapsed());
        let start = Instant::now();
        let np = generic_join(&inst.db, &inst.query).unwrap();
        times.push(start.elapsed());
        assert!(
            ms.tuples.is_empty()
                && ya.tuples.is_empty()
                && lf.tuples.is_empty()
                && np.tuples.is_empty()
        );
        println!(
            "{:>5} {:>9} | {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?}",
            chunk, n, times[0], times[1], times[2], times[3]
        );
    }
    println!(
        "\nDoubling M doubles Minesweeper's work but quadruples everyone\n\
         else's — the gap between Õ(|C| + Z) and worst-case optimality\n\
         grows without bound (Appendix J)."
    );
}
