//! Triangle listing with the dyadic constraint data structure of
//! Theorem 5.4, cross-checked against Leapfrog Triejoin.
//!
//! Triangle counting drives clustering coefficients and transitivity
//! ratios in social-network analysis (Section 6.1); the query is
//! `Q∆ = R(A,B) ⋈ S(B,C) ⋈ T(A,C)` over the edge relation.
//!
//! Run with `cargo run --release --example triangle_counting`.

use minesweeper_join::baselines::leapfrog_triejoin;
use minesweeper_join::core::triangle_join;
use minesweeper_join::workloads::graphs::chung_lu;
use minesweeper_join::workloads::triangle_instance;

fn main() {
    // Oriented power-law graph: listing (a < b < c)-oriented triangles
    // avoids double counting.
    let nodes = 3_000;
    let mut edges = chung_lu(nodes, 25_000, 2.3, 99);
    edges.retain(|&(u, v)| u < v);
    let (db, r, s, t, q) = triangle_instance(&edges);
    println!(
        "graph: {} nodes, {} oriented edges",
        nodes,
        db.relation(r).len()
    );

    let res = triangle_join(&db, r, s, t).unwrap();
    println!("\ntriangles found: {}", res.tuples.len());
    for tri in res.tuples.iter().take(5) {
        println!("  {:?}", tri);
    }
    if res.tuples.len() > 5 {
        println!("  …");
    }
    println!(
        "\nstats: {} FindGap calls, {} probe points, {} constraints",
        res.stats.find_gap_calls, res.stats.probe_points, res.stats.constraints_inserted
    );

    // Cross-check with the worst-case-optimal baseline.
    let lf = leapfrog_triejoin(&db, &q).unwrap();
    let mut a = res.tuples.clone();
    let mut b = lf.tuples.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b, "dyadic CDS and LFTJ must agree");
    println!(
        "cross-check vs Leapfrog Triejoin: OK ({} triangles)",
        b.len()
    );
}
