//! Quickstart: build a small database, run Minesweeper, inspect the
//! certificate-size statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use minesweeper_join::prelude::*;

fn main() {
    // A tiny "who-can-review-what" schema:
    //   authors(A)           — people allowed to author
    //   wrote(A, P)          — authorship
    //   reviewed(P, R)       — reviews of papers
    //   reviewers(R)         — active reviewers
    // Query: authors ⋈ wrote ⋈ reviewed ⋈ reviewers over GAO (A, P, R).
    let mut db = Database::new();
    let authors = db.add(builder::unary("authors", [1, 2, 3])).unwrap();
    let wrote = db
        .add(builder::binary("wrote", [(1, 10), (2, 11), (2, 12), (3, 13), (4, 14)]))
        .unwrap();
    let reviewed = db
        .add(builder::binary(
            "reviewed",
            [(10, 100), (11, 101), (12, 100), (12, 102), (14, 103)],
        ))
        .unwrap();
    let reviewers = db.add(builder::unary("reviewers", [100, 101, 102])).unwrap();

    let query = Query::new(3)
        .atom(authors, &[0])
        .atom(wrote, &[0, 1])
        .atom(reviewed, &[1, 2])
        .atom(reviewers, &[2]);

    // The query is a path, hence β-acyclic: choose_gao returns a nested
    // elimination order and Minesweeper runs in chain mode with the
    // Õ(|C| + Z) guarantee of Theorem 2.7.
    let choice = choose_gao(&query, 8);
    println!(
        "GAO order {:?}, probe mode {:?}, elimination width {}",
        choice.order, choice.mode, choice.width
    );

    let result = minesweeper_join(&db, &query, choice.mode).unwrap();
    println!("\noutput tuples (author, paper, reviewer):");
    for t in &result.tuples {
        println!("  {t:?}");
    }

    // Cross-check against the naive join.
    let mut sorted = result.tuples.clone();
    sorted.sort();
    assert_eq!(sorted, naive_join(&db, &query).unwrap());

    println!("\nexecution statistics:");
    println!("  FindGap calls (certificate proxy): {}", result.stats.find_gap_calls);
    println!("  probe points:                      {}", result.stats.probe_points);
    println!("  constraints inserted:              {}", result.stats.constraints_inserted);
    println!("  outputs (Z):                       {}", result.stats.outputs);
    println!(
        "  Prop 2.6 certificate upper bound:  {}",
        canonical_certificate_size(&db, &query).unwrap()
    );
}
