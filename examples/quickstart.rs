//! Quickstart: build a small database, plan a query, stream its output,
//! and inspect the certificate-size statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use minesweeper_join::prelude::*;

fn main() {
    // A tiny "who-can-review-what" schema:
    //   authors(A)           — people allowed to author
    //   wrote(A, P)          — authorship
    //   reviewed(P, R)       — reviews of papers
    //   reviewers(R)         — active reviewers
    // Query: authors ⋈ wrote ⋈ reviewed ⋈ reviewers over GAO (A, P, R).
    let mut db = Database::new();
    let authors = db.add(builder::unary("authors", [1, 2, 3])).unwrap();
    let wrote = db
        .add(builder::binary(
            "wrote",
            [(1, 10), (2, 11), (2, 12), (3, 13), (4, 14)],
        ))
        .unwrap();
    let reviewed = db
        .add(builder::binary(
            "reviewed",
            [(10, 100), (11, 101), (12, 100), (12, 102), (14, 103)],
        ))
        .unwrap();
    let reviewers = db
        .add(builder::unary("reviewers", [100, 101, 102]))
        .unwrap();

    let query = Query::new(3)
        .atom(authors, &[0])
        .atom(wrote, &[0, 1])
        .atom(reviewed, &[1, 2])
        .atom(reviewers, &[2]);

    // Plan once. The query is a path, hence β-acyclic: the planner picks a
    // nested elimination order and chain probe mode — the Õ(|C| + Z)
    // guarantee of Theorem 2.7.
    let p = plan(&db, &query).unwrap();
    println!("{}\n", p.explain());

    // Stream lazily: tuples arrive as the gap structure certifies them,
    // and statistics are live mid-flight.
    let mut stream = p.stream(&db).unwrap();
    println!("output tuples (author, paper, reviewer):");
    if let Some(first) = stream.next() {
        println!(
            "  {first:?}   <- after {} FindGap calls",
            stream.stats().find_gap_calls
        );
    }
    for t in stream.by_ref() {
        println!("  {t:?}");
    }
    let stats = stream.stats();

    // Or materialize everything (sorted in the original attribute order)
    // and cross-check against the naive oracle — and against every other
    // algorithm in the registry.
    let exec = p.execute(&db).unwrap();
    assert_eq!(exec.result.tuples, naive_join(&db, &query).unwrap());
    for algo in algorithms() {
        assert_eq!(
            algo.run(&db, &query).unwrap().tuples,
            exec.result.tuples,
            "{} disagrees",
            algo.name()
        );
    }
    println!("\nall {} registry algorithms agree", algorithms().len());

    println!("\nexecution statistics:");
    println!(
        "  FindGap calls (certificate proxy): {}",
        stats.find_gap_calls
    );
    println!(
        "  probe points:                      {}",
        stats.probe_points
    );
    println!(
        "  constraints inserted:              {}",
        stats.constraints_inserted
    );
    println!("  outputs (Z):                       {}", stats.outputs);
    println!(
        "  Prop 2.6 certificate upper bound:  {}",
        canonical_certificate_size(&db, &query).unwrap()
    );
}
