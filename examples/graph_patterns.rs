//! Graph-pattern mining on a synthetic social network — the workload of
//! the paper's Section 5.2. Runs the Star, 3-path, and Tree queries on a
//! power-law graph with sampled vertex predicates and reports input size
//! vs measured certificate size (the Figure 2 quantities).
//!
//! Run with `cargo run --release --example graph_patterns`.

use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::minesweeper_join;
use minesweeper_join::workloads::graphs::{chung_lu, symmetrize};
use minesweeper_join::workloads::{star_query, three_path_query, tree_query};

fn main() {
    // A 20K-node power-law "social network".
    let nodes = 20_000;
    let edges = symmetrize(&chung_lu(nodes, 120_000, 2.3, 2014));
    println!(
        "graph: {} nodes, {} directed edges (Chung-Lu, γ=2.3)\n",
        nodes,
        edges.len()
    );
    // Vertex predicates sampled at p = 0.001, as in the paper.
    let p = 0.001;
    for (name, inst) in [
        ("Star  ", star_query(&edges, nodes, p, 7)),
        ("3-path", three_path_query(&edges, nodes, p, 7)),
        ("Tree  ", tree_query(&edges, nodes, p, 7)),
    ] {
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        let n = inst.db.total_tuples();
        let c = res.stats.find_gap_calls;
        println!(
            "{name}  N = {n:>7}   |C| = {c:>6}   N/|C| = {:>5.0}x   Z = {}",
            n as f64 / c.max(1) as f64,
            res.stats.outputs
        );
    }
    println!(
        "\nThe measured certificate (FindGap count) sits orders of magnitude\n\
         below the input size — the Figure 2 phenomenon: an indexed join\n\
         can certify its output while reading a vanishing fraction of the\n\
         data."
    );
}
