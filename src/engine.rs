//! The engine front door: prepared statements over a typed catalog.
//!
//! The paper's certificate bound `Õ(|C| + Z)` (Theorem 3.2) is a statement
//! about the *probe loop* — it assumes the ordered indexes consistent with
//! the GAO already exist. A service that re-plans and physically re-indexes
//! on every call pays that setup cost per query; a service whose domain is
//! raw `i64` cannot speak real workloads at all. [`Engine`] closes both
//! gaps:
//!
//! * it owns the [`Database`] **plus a schema catalog** (per-column
//!   [`ColumnType`]s) and a [`Dictionary`] that interns string values into
//!   the storage-level integer domain at the input boundary and decodes
//!   them back at the output boundary — the hot path never sees a string;
//! * [`Engine::prepare`] parses a query once and returns a
//!   [`PreparedStatement`] backed by a cache **keyed by query shape**
//!   holding the parsed [`Query`], the [`Plan`], *and the GAO-re-indexed
//!   relations* ([`minesweeper_core::PreparedExec`]) — repeated executions
//!   skip straight to the probe loop, and the [`ExplainPlan`] reports the
//!   cache hit and a stable plan identity. Query literals (`F(a, "jfk")`)
//!   become equality constraints **pre-seeded into the probe loop's CDS**,
//!   so differently-parameterized statements of one shape share a single
//!   cache entry and the catalog/dictionary are never touched by queries —
//!   which is also why `prepare` takes `&self` and any number of
//!   statements can be alive at once;
//! * a single [`ExecOptions`] (`algo`, `threads`, `limit`,
//!   `collect_stats`) replaces per-call-site knobs, and every evaluator —
//!   serial Minesweeper, the sharded `minesweeper-par`, and each baseline
//!   in the registry — dispatches through the same
//!   [`PreparedStatement::execute`] / [`PreparedStatement::stream`] path.
//!
//! ```
//! use minesweeper_join::engine::{Engine, ExecOptions};
//! use minesweeper_join::storage::{ColumnType, Value};
//!
//! let mut engine = Engine::new();
//! engine
//!     .add_relation(
//!         "Flight",
//!         &[ColumnType::Str, ColumnType::Str],
//!         [
//!             vec![Value::from("jfk"), Value::from("lhr")],
//!             vec![Value::from("lhr"), Value::from("nrt")],
//!             vec![Value::from("sfo"), Value::from("jfk")],
//!         ],
//!     )
//!     .unwrap();
//! // Two-hop itineraries; planning and any re-indexing happen once.
//! let stmt = engine.prepare("Flight(a, b), Flight(b, c)").unwrap();
//! let result = stmt.execute(&ExecOptions::default()).unwrap();
//! assert_eq!(result.columns, vec!["a", "b", "c"]);
//! assert_eq!(
//!     result.rows[0],
//!     vec![Value::from("jfk"), Value::from("lhr"), Value::from("nrt")]
//! );
//! // String literals constrain a position to a constant; both statements
//! // can be held at the same time.
//! let hubs = engine.prepare("Flight(a, \"jfk\")").unwrap();
//! assert_eq!(
//!     hubs.execute(&ExecOptions::default()).unwrap().rows,
//!     vec![vec![Value::from("sfo")]]
//! );
//! assert_eq!(stmt.execute(&ExecOptions::default()).unwrap().rows, result.rows);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use minesweeper_baselines::lookup_configured;
use minesweeper_core::{
    plan, shard_strategy, Atom, ExplainCache, ExplainPlan, ExplainShards, ExplainStorage,
    MinesweeperPar, Plan, PreparedExec, Query, QueryError,
};
use minesweeper_durability::{
    Batch as WalBatch, CellOp, DurabilityCounters, DurabilityOptions, DurableStore, Opened,
    RelationDump, WalRecord,
};
use minesweeper_storage::{
    value::MAX_DOMAIN_VALUE, ColumnType, Database, Dictionary, ExecStats, LeafPolicy, RelId,
    RelationBuilder, StorageError, TrieRelation, Tuple, Val, Value, WriteOp, WriteOutcome,
};

use crate::text::{parse_query_ast, parse_typed_relation, QueryArg, TextError};

/// Pipeline description shared by every sharded-execution explain (the
/// `strategy` field carries the data-dependent variant; the `merge`
/// field names the global-order reassembly).
const SHARD_DETAIL: &str = "equi-depth shard tasks of the first GAO attribute (nested \
                            second-attribute splits for heavy runs) on a work-stealing deque, \
                            k-way heap merge keyed by GAO-translated tuples";

/// Errors from the engine front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Query / relation text failed to parse or resolve.
    Text(TextError),
    /// Planning or execution rejected the query.
    Query(QueryError),
    /// The storage catalog rejected an operation.
    Storage(String),
    /// An attribute is bound to columns of conflicting types (or a
    /// literal's type does not match its column).
    TypeMismatch {
        /// The attribute's name.
        attr: String,
        /// Type seen first (for literals: the column's type).
        expected: ColumnType,
        /// Conflicting type.
        found: ColumnType,
    },
    /// A row's cell count does not match the declared column count.
    RowArity {
        /// Relation being loaded.
        relation: String,
        /// Declared column count.
        expected: usize,
        /// Cells found in the offending row.
        got: usize,
    },
    /// A row cell does not match the declared column type.
    ValueType {
        /// Relation being loaded.
        relation: String,
        /// 0-based column.
        column: usize,
        /// The declared type the cell violated.
        expected: ColumnType,
    },
    /// `ExecOptions::algo` named no registered algorithm.
    UnknownAlgorithm(String),
    /// The execution deadline ([`ExecOptions::deadline`]) passed before
    /// the statement completed. The query itself was fine — this reports
    /// an execution cut short, so it is *not* a query rejection.
    DeadlineExceeded,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Text(e) => write!(f, "{e}"),
            EngineError::Query(e) => write!(f, "{e}"),
            EngineError::Storage(msg) => write!(f, "{msg}"),
            EngineError::TypeMismatch {
                attr,
                expected,
                found,
            } => write!(
                f,
                "attribute {attr} is bound to both {expected} and {found} columns"
            ),
            EngineError::RowArity {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation}: row has {got} cells but {expected} columns are declared"
            ),
            EngineError::ValueType {
                relation,
                column,
                expected,
            } => write!(
                f,
                "relation {relation} column {column}: value does not match declared type \
                 {expected}"
            ),
            EngineError::UnknownAlgorithm(name) => write!(f, "unknown algorithm {name:?}"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl EngineError {
    /// The stable protocol error code for this error — what `msj serve`
    /// puts on an `ERR <code> <message>` response line (see
    /// `docs/SERVICE.md`). Codes are part of the wire contract: they
    /// name error *categories*, never message text, so clients can
    /// switch on them across releases.
    pub fn code(&self) -> &'static str {
        match self {
            EngineError::Text(_) => "PARSE",
            EngineError::Query(_) => "PLAN",
            EngineError::Storage(_) => "STORAGE",
            EngineError::TypeMismatch { .. } => "TYPE",
            EngineError::RowArity { .. } | EngineError::ValueType { .. } => "LOAD",
            EngineError::UnknownAlgorithm(_) => "ALGO",
            EngineError::DeadlineExceeded => "DEADLINE",
        }
    }

    /// True when the error rejects the *request itself* (unparseable or
    /// unplannable query text, a type conflict, an unknown algorithm)
    /// rather than reporting a failure while executing it. The CLI maps
    /// the two classes to distinct process exit codes (3 vs. 1).
    pub fn is_query_rejection(&self) -> bool {
        matches!(
            self,
            EngineError::Text(_)
                | EngineError::Query(_)
                | EngineError::TypeMismatch { .. }
                | EngineError::UnknownAlgorithm(_)
        )
    }
}

impl std::error::Error for EngineError {}

impl From<TextError> for EngineError {
    fn from(e: TextError) -> Self {
        EngineError::Text(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e.to_string())
    }
}

/// Execution knobs — the one options struct every evaluator honours.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Evaluator name or alias from the registry (`None` = the planned
    /// Minesweeper engine; `"minesweeper-par"` = the sharded engine).
    pub algo: Option<String>,
    /// Worker threads. `0` (the default) runs serially; any explicit
    /// count — including `1` — selects the sharded parallel engine for
    /// the Minesweeper evaluators (baselines ignore it).
    pub threads: usize,
    /// Cap on materialized output tuples. The serial engine pushes the
    /// limit into the probe loop; the parallel engine stops its
    /// global-order merge at the cap and cancels queued and in-flight
    /// shards (memory `O(tasks × channel capacity + limit)`), returning
    /// the exact serial prefix; baselines truncate after running to
    /// completion.
    pub limit: Option<usize>,
    /// Attach [`ExecStats`] (and per-shard stats, when sharded) to the
    /// result.
    pub collect_stats: bool,
    /// Cancel execution at this instant. Streaming paths stop yielding
    /// (see [`StatementStream::deadline_expired`]) and materializing
    /// paths return [`EngineError::DeadlineExceeded`]; either way the
    /// remaining probe work — queued and in-flight shards included — is
    /// abandoned. Baseline evaluators run to completion and honour the
    /// deadline only when they finish. `None` (the default) never
    /// expires and leaves every execution path exactly as it was.
    pub deadline: Option<Instant>,
}

impl ExecOptions {
    /// Selects an evaluator by registry name or alias.
    pub fn with_algo(mut self, name: impl Into<String>) -> Self {
        self.algo = Some(name.into());
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps materialized output.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Requests statistics on the result.
    pub fn with_stats(mut self) -> Self {
        self.collect_stats = true;
        self
    }

    /// Sets the execution deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// True when `deadline` is set and has passed. Callers poll this between
/// tuples — `Instant::now()` is tens of nanoseconds, far below one probe.
fn deadline_expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// One row-level write in an [`Engine::apply_batch`] batch, with typed
/// cells (the write-path twin of the typed rows [`Engine::add_relation`]
/// loads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowOp {
    /// Add a row (no-op if present — set semantics).
    Insert(Vec<Value>),
    /// Remove a row (no-op if absent).
    Delete(Vec<Value>),
}

impl RowOp {
    /// The row the operation carries.
    pub fn row(&self) -> &[Value] {
        match self {
            RowOp::Insert(r) | RowOp::Delete(r) => r,
        }
    }
}

/// How a durable engine came up (see [`Engine::open_durable`]).
#[derive(Debug)]
pub enum DurableBoot {
    /// A new data directory: the caller loads initial relations, then
    /// writes the boot checkpoint.
    Fresh,
    /// An existing directory was recovered losslessly.
    Recovered(RecoveryReport),
}

/// What a recovery did — surfaced on `msj serve` startup.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The checkpoint the catalog was rebuilt from.
    pub checkpoint_id: u64,
    /// Relations restored from that checkpoint.
    pub relations: usize,
    /// WAL tail records replayed on top of it.
    pub replayed_records: u64,
    /// Conditions recovery tolerated (torn final line, an invalid newest
    /// checkpoint it fell back past).
    pub warnings: Vec<String>,
}

/// What one checkpoint wrote (see [`Engine::checkpoint`]).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// The published checkpoint's sequence number.
    pub id: u64,
    /// Relations dumped.
    pub relations: usize,
    /// Total rows across all dumps.
    pub rows: u64,
}

/// The WAL text form of one typed row (integers print, strings pass
/// through; escaping happens at the record layer).
fn cells_of(row: &[Value]) -> Vec<String> {
    row.iter()
        .map(|cell| match cell {
            Value::Int(v) => v.to_string(),
            Value::Str(s) => s.clone(),
        })
        .collect()
}

/// Decodes one stored tuple back to text cells for a checkpoint dump —
/// the exact inverse of the loader's encoding.
fn decode_cells(tuple: &[Val], types: &[ColumnType], dict: &Dictionary) -> Vec<String> {
    tuple
        .iter()
        .zip(types)
        .map(|(&v, ty)| match ty {
            ColumnType::Int => v.to_string(),
            ColumnType::Str => dict
                .resolve(v)
                .expect("stored string ids always resolve")
                .to_string(),
        })
        .collect()
}

/// Parses a checkpoint manifest's column-type tokens back into the
/// schema catalog's types.
fn parse_type_tokens(relation: &str, tokens: &[String]) -> Result<Vec<ColumnType>, EngineError> {
    tokens
        .iter()
        .map(|t| match t.as_str() {
            "int" => Ok(ColumnType::Int),
            "str" => Ok(ColumnType::Str),
            other => Err(EngineError::Storage(format!(
                "checkpoint manifest: relation {relation} has unknown column type {other:?}"
            ))),
        })
        .collect()
}

/// Declared shape of one stored relation.
#[derive(Debug, Clone)]
struct RelSchema {
    cols: Vec<ColumnType>,
}

/// One cached prepared-statement entry: everything repeated executions of
/// a query *shape* reuse — differently-parameterized literals share it,
/// since literal values live in per-statement seed constraints, not here.
/// Shared (`Arc`) between the cache and the statements hitting it — also
/// across threads, which is what lets one engine serve many connections.
#[derive(Debug)]
struct CachedStatement {
    /// Stable plan identity: statements reporting the same id share one
    /// plan and one set of re-indexed relations.
    id: u64,
    /// The query (original numbering) over the engine's database.
    query: Query,
    /// The planning decisions.
    plan: Plan,
    /// The bound execution: owns the GAO-re-indexed relations when the
    /// plan demanded them — the expensive half of the cache. Built
    /// lazily on the first Minesweeper-path execution, so statements
    /// dispatched to a baseline never pay the physical re-index.
    /// `OnceLock`, so concurrent first executions race safely and every
    /// later one reads the same bound state.
    exec: OnceLock<PreparedExec>,
    /// Per-attribute value types (decode map).
    attr_types: Vec<ColumnType>,
    /// `(relation, version)` for every relation the query touches, at plan
    /// time. A later prepare whose database disagrees treats the entry as
    /// stale — the write path's cache-invalidation key (see
    /// `docs/STORAGE.md`). Writes to relations *not* listed here leave the
    /// entry warm.
    versions: Vec<(RelId, u64)>,
}

impl CachedStatement {
    /// The bound execution, built (at most once, then cached) on first
    /// use. `plan()` already validated the query against this immutable
    /// catalog, so the bind cannot newly fail.
    fn exec(&self, db: &Database) -> &PreparedExec {
        self.exec.get_or_init(|| {
            self.plan
                .prepare_exec(db)
                .expect("query validated when the plan was built")
        })
    }
}

/// The engine front door (see the module docs). Loading relations takes
/// `&mut self`; preparing and executing statements take `&self`, so any
/// number of prepared statements can be alive concurrently.
///
/// The engine is `Send + Sync`: once loaded it can sit behind an
/// `Arc<Engine>` shared by many connection threads — the statement cache
/// is the shared hot state (`RwLock`-protected, read-mostly), and a
/// cached entry's expensive bound execution is a `OnceLock` so exactly
/// one thread pays any physical re-index. This is the contract the
/// `msj serve` front door (see [`crate::server`]) is built on.
#[derive(Debug)]
pub struct Engine {
    /// The current database version, behind a copy-on-write `Arc`: readers
    /// (prepared statements, detached parallel streams) clone the `Arc`
    /// once and never lock again — that clone *is* their snapshot, kept
    /// alive across any number of later writes. Writers take the write
    /// lock briefly to `Arc::make_mut` (cheap: relations are `Arc`-shared
    /// inside) and swap in the next version. See `docs/STORAGE.md`.
    db: RwLock<Arc<Database>>,
    schemas: Vec<RelSchema>,
    /// Copy-on-write like `db`: decode paths hold an `Arc` snapshot and
    /// never lock; write batches interning new strings clone-on-write.
    /// The dictionary only ever grows, so any newer snapshot decodes any
    /// older database version.
    dict: RwLock<Arc<Dictionary>>,
    cache: RwLock<HashMap<String, Arc<CachedStatement>>>,
    next_plan_id: AtomicU64,
    /// The write-ahead log + checkpoint store when the engine is durable
    /// (see [`Engine::open_durable`]); `None` for in-memory engines.
    /// Locked only inside the `db` write lock, so WAL order equals
    /// commit order by construction.
    durability: Option<Mutex<DurableStore>>,
    /// Threshold-triggered compaction after writes (default on): when a
    /// batch leaves a relation's delta above
    /// [`minesweeper_storage::COMPACT_DELTA_RATIO`], the engine folds it
    /// immediately, under the same write lock. Content-neutral —
    /// versions, cached plans, and reader snapshots are unaffected.
    auto_compact: AtomicBool,
    auto_compactions: AtomicU64,
    /// Query-text parses performed by [`Engine::prepare`]. Deliberately
    /// *not* a cache-hit counter: it counts trips through the text front
    /// end, which is exactly the work the service's `PREPARE`/`EXEC`
    /// verbs exist to skip — `EXEC` never bumps it, so the counter stays
    /// flat across repeated executions of a prepared statement.
    parses: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            db: RwLock::default(),
            schemas: Vec::new(),
            dict: RwLock::default(),
            cache: RwLock::default(),
            next_plan_id: AtomicU64::new(0),
            durability: None,
            auto_compact: AtomicBool::new(true),
            auto_compactions: AtomicU64::new(0),
            parses: AtomicU64::new(0),
        }
    }
}

// The service front door shares one engine across connection threads;
// losing either marker is an API break, so fail at compile time, not in
// a server stress test.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineError>();
};

impl Engine {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing integer database: every column is catalogued as
    /// [`ColumnType::Int`], so embedded callers migrating from the raw
    /// `Database` API keep their exact semantics.
    pub fn from_database(db: Database) -> Self {
        let schemas = db
            .iter()
            .map(|(_, r)| RelSchema {
                cols: vec![ColumnType::Int; r.arity()],
            })
            .collect();
        Engine {
            db: RwLock::new(Arc::new(db)),
            schemas,
            ..Self::default()
        }
    }

    /// A snapshot of the current database version (encoded values). The
    /// returned `Arc` stays valid — and unchanged — across later writes;
    /// call again to observe them.
    pub fn db(&self) -> Arc<Database> {
        self.db.read().unwrap().clone()
    }

    /// A snapshot of the engine's string dictionary (append-only: any
    /// snapshot decodes any database version no newer than itself).
    pub fn dict(&self) -> Arc<Dictionary> {
        self.dict.read().unwrap().clone()
    }

    /// The declared column types of a stored relation.
    pub fn schema(&self, rel: RelId) -> &[ColumnType] {
        &self.schemas[rel.0].cols
    }

    /// Adds a typed relation: rows are checked against `types`, string
    /// cells are interned through the dictionary, and the encoded tuples
    /// are indexed exactly like native integers. Equality joins are
    /// preserved by any injective encoding, so the decoded result of a
    /// join over encoded relations equals the string-level join.
    pub fn add_relation(
        &mut self,
        name: &str,
        types: &[ColumnType],
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<RelId, EngineError> {
        let mut b = RelationBuilder::new(name, types.len());
        let mut buf: Tuple = vec![0; types.len()];
        let dict = Arc::make_mut(self.dict.get_mut().unwrap());
        for row in rows {
            if row.len() != types.len() {
                return Err(EngineError::RowArity {
                    relation: name.to_string(),
                    expected: types.len(),
                    got: row.len(),
                });
            }
            for (c, (cell, ty)) in row.iter().zip(types).enumerate() {
                buf[c] = match (cell, ty) {
                    (Value::Int(v), ColumnType::Int) => *v,
                    (Value::Str(s), ColumnType::Str) => dict.intern(s),
                    _ => {
                        return Err(EngineError::ValueType {
                            relation: name.to_string(),
                            column: c,
                            expected: *ty,
                        })
                    }
                };
            }
            b.push(&buf);
        }
        self.add_built(b.build()?, types.to_vec())
    }

    /// Loads a whitespace-separated tuple file (see
    /// [`crate::text::parse_typed_relation`]): column types are inferred,
    /// integer-only files stay byte-identical to the untyped path.
    pub fn load_tsv(&mut self, name: &str, text: &str) -> Result<RelId, EngineError> {
        let typed = parse_typed_relation(name, text)?;
        self.add_relation(&typed.name, &typed.types, typed.rows)
    }

    /// Adds an already-built integer relation under an all-`Int` schema.
    pub fn add_int_relation(&mut self, rel: TrieRelation) -> Result<RelId, EngineError> {
        let types = vec![ColumnType::Int; rel.arity()];
        self.add_built(rel, types)
    }

    fn add_built(
        &mut self,
        rel: TrieRelation,
        cols: Vec<ColumnType>,
    ) -> Result<RelId, EngineError> {
        // The Arc is unique during the loading phase (statements only
        // borrow the engine), so this mutates in place; a clone happens
        // only if a detached stream from an earlier statement is still
        // running, which keeps that stream's view consistent.
        let id = Arc::make_mut(self.db.get_mut().unwrap()).add(rel)?;
        debug_assert_eq!(id.0, self.schemas.len(), "schema catalog tracks RelIds");
        self.schemas.push(RelSchema { cols });
        Ok(id)
    }

    /// Inserts typed rows into a stored relation (set semantics: rows
    /// already present are no-ops). Takes `&self` — writes go through the
    /// copy-on-write database, so statements and streams prepared earlier
    /// keep their snapshots; the relation's version is bumped iff content
    /// actually changed, invalidating cached plans over it. See
    /// `docs/STORAGE.md` for the full lifecycle contract.
    pub fn insert(
        &self,
        relation: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<WriteOutcome, EngineError> {
        self.apply_batch(relation, rows.into_iter().map(RowOp::Insert))
    }

    /// Deletes typed rows from a stored relation (rows not present are
    /// no-ops). Same snapshot/version semantics as [`Engine::insert`].
    pub fn delete(
        &self,
        relation: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<WriteOutcome, EngineError> {
        self.apply_batch(relation, rows.into_iter().map(RowOp::Delete))
    }

    /// Applies a mixed batch of inserts and deletes to one relation,
    /// atomically and in order. The whole batch is validated against the
    /// declared schema before any state changes; the returned
    /// [`WriteOutcome`] counts rows that actually changed membership.
    /// Concurrent readers are never blocked: they keep the `Arc` snapshot
    /// they already hold, and the next prepare sees the new version.
    ///
    /// On a durable engine ([`Engine::open_durable`]) the batch is
    /// appended to the write-ahead log *before* the copy-on-write swap —
    /// validation up front is exhaustive (arity, type, value domain), so
    /// a logged record can never fail to apply, and a WAL append failure
    /// aborts the batch with nothing applied.
    pub fn apply_batch(
        &self,
        relation: &str,
        ops: impl IntoIterator<Item = RowOp>,
    ) -> Result<WriteOutcome, EngineError> {
        let ops: Vec<RowOp> = ops.into_iter().collect();
        let id = self.db.read().unwrap().id_of(relation)?;
        if ops.is_empty() {
            return Ok(WriteOutcome::default());
        }
        let types = self.schemas[id.0].cols.clone();
        // Validate the whole batch before interning, logging, or applying
        // anything. The checks mirror everything `Database::apply` would
        // reject (arity, cell type, integer domain), which is what makes
        // log-before-apply safe.
        for op in &ops {
            let row = op.row();
            if row.len() != types.len() {
                return Err(EngineError::RowArity {
                    relation: relation.to_string(),
                    expected: types.len(),
                    got: row.len(),
                });
            }
            for (c, (cell, ty)) in row.iter().zip(&types).enumerate() {
                match (cell, ty) {
                    (Value::Int(v), ColumnType::Int) => {
                        if !(0..=MAX_DOMAIN_VALUE).contains(v) {
                            return Err(StorageError::ValueOutOfDomain {
                                relation: relation.to_string(),
                                value: *v,
                            }
                            .into());
                        }
                    }
                    (Value::Str(_), ColumnType::Str) => {}
                    _ => {
                        return Err(EngineError::ValueType {
                            relation: relation.to_string(),
                            column: c,
                            expected: *ty,
                        })
                    }
                }
            }
        }
        // Encode. Inserts may intern new strings (copy-on-write on the
        // dictionary); a delete naming a string the dictionary has never
        // seen cannot match any stored tuple and is dropped as a no-op
        // without polluting the dictionary.
        let mut encoded: Vec<WriteOp> = Vec::with_capacity(ops.len());
        {
            let mut dict = self.dict.write().unwrap();
            'ops: for op in &ops {
                let row = op.row();
                let mut t: Tuple = Vec::with_capacity(row.len());
                for cell in row {
                    t.push(match cell {
                        Value::Int(v) => *v,
                        Value::Str(s) => match op {
                            RowOp::Insert(_) => Arc::make_mut(&mut dict).intern(s),
                            RowOp::Delete(_) => match dict.id_of(s) {
                                Some(v) => v,
                                None => continue 'ops, // vacuous delete
                            },
                        },
                    });
                }
                encoded.push(match op {
                    RowOp::Insert(_) => WriteOp::Insert(t),
                    RowOp::Delete(_) => WriteOp::Delete(t),
                });
            }
        }
        let mut db = self.db.write().unwrap();
        // Log before the swap, under the same write lock, so the WAL's
        // record order is exactly the commit order. The record carries the
        // *original* text-level ops (vacuous deletes included — replay
        // re-drops them the same way) plus the relation's pre-batch
        // version, which recovery uses as a continuity check.
        if let Some(store) = &self.durability {
            let record = WalRecord::Batch(WalBatch {
                relation: relation.to_string(),
                version_before: db.version(id),
                ops: ops
                    .iter()
                    .map(|op| match op {
                        RowOp::Insert(row) => CellOp::Insert(cells_of(row)),
                        RowOp::Delete(row) => CellOp::Delete(cells_of(row)),
                    })
                    .collect(),
            });
            store
                .lock()
                .unwrap()
                .log(&record)
                .map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        let outcome = Arc::make_mut(&mut db).apply(id, &encoded)?;
        // Threshold-triggered compaction, still under the write lock:
        // fold the delta the moment it outgrows the ratio, so read-path
        // merge overhead stays bounded without anyone asking. Not logged —
        // compaction is content-neutral and recovery re-converges on its
        // own (replayed deltas re-trigger the same threshold).
        if self.auto_compact.load(Ordering::Relaxed) && db.versioned(id).should_compact() {
            Arc::make_mut(&mut db).compact(id);
            self.auto_compactions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(outcome)
    }

    /// Whether threshold-triggered compaction after writes is enabled
    /// (see [`Engine::set_auto_compact`]; default on).
    pub fn auto_compact_enabled(&self) -> bool {
        self.auto_compact.load(Ordering::Relaxed)
    }

    /// Enables or disables threshold-triggered compaction after writes.
    /// Off restores the advise-only behavior: deltas accumulate until an
    /// explicit [`Engine::compact`] / `W COMPACT`.
    pub fn set_auto_compact(&self, on: bool) {
        self.auto_compact.store(on, Ordering::Relaxed);
    }

    /// The leaf-representation policy the catalog selects dense bitset
    /// leaves under (see [`LeafPolicy`]; default from `MSJ_LEAF`).
    pub fn leaf_policy(&self) -> LeafPolicy {
        self.db.read().unwrap().leaf_policy()
    }

    /// Switches the leaf-representation policy and rebuilds every
    /// relation's hybrid index under it. Content- and version-neutral:
    /// cached plans and snapshots held by running readers are unaffected.
    pub fn set_leaf_policy(&self, policy: LeafPolicy) {
        let mut db = self.db.write().unwrap();
        Arc::make_mut(&mut db).set_leaf_policy(policy);
    }

    /// How many threshold-triggered compactions the engine has performed.
    pub fn auto_compactions(&self) -> u64 {
        self.auto_compactions.load(Ordering::Relaxed)
    }

    /// How many query texts [`Engine::prepare`] has parsed. Executing an
    /// already-prepared statement never parses, so a service holding
    /// statements across requests (the `PREPARE`/`EXEC` verbs) keeps
    /// this flat — the deterministic evidence that the text front end
    /// was skipped.
    pub fn query_parses(&self) -> u64 {
        self.parses.load(Ordering::Relaxed)
    }

    /// Current version counter of a relation (bumped per content-changing
    /// batch; the cache-invalidation key).
    pub fn relation_version(&self, relation: &str) -> Result<u64, EngineError> {
        let db = self.db.read().unwrap();
        Ok(db.version(db.id_of(relation)?))
    }

    /// Folds one relation's write delta into a fresh immutable base.
    /// Content-neutral: versions, cached plans, and snapshots held by
    /// running readers are all unaffected. Returns false when the delta
    /// was already empty.
    pub fn compact_relation(&self, relation: &str) -> Result<bool, EngineError> {
        let mut db = self.db.write().unwrap();
        let id = db.id_of(relation)?;
        Ok(Arc::make_mut(&mut db).compact(id))
    }

    /// Compacts every relation with pending writes; returns how many were
    /// folded.
    pub fn compact(&self) -> usize {
        let mut db = self.db.write().unwrap();
        Arc::make_mut(&mut db).compact_all()
    }

    /// Types one text row against a declared schema, with exactly the
    /// rules the TSV loader and the `W INSERT` wire path use: integer
    /// columns parse the token, string columns take it verbatim. Shared
    /// by the server session and WAL replay, so a replayed record is
    /// typed bit-for-bit like the live request that produced it.
    pub fn type_row(
        relation: &str,
        types: &[ColumnType],
        cells: &[String],
    ) -> Result<Vec<Value>, EngineError> {
        if cells.len() != types.len() {
            return Err(EngineError::RowArity {
                relation: relation.to_string(),
                expected: types.len(),
                got: cells.len(),
            });
        }
        cells
            .iter()
            .zip(types)
            .enumerate()
            .map(|(c, (cell, ty))| match ty {
                ColumnType::Int => {
                    cell.parse()
                        .map(Value::Int)
                        .map_err(|_| EngineError::ValueType {
                            relation: relation.to_string(),
                            column: c,
                            expected: ColumnType::Int,
                        })
                }
                ColumnType::Str => Ok(Value::Str(cell.clone())),
            })
            .collect()
    }

    /// Opens a durable engine over a data directory (see
    /// `docs/DURABILITY.md`): creates the directory layout on first boot,
    /// or recovers — newest valid checkpoint, then WAL-tail replay
    /// through the normal typed write path — on every later one. The
    /// returned [`DurableBoot`] says which happened; after a fresh boot
    /// the caller loads its initial relations and calls
    /// [`Engine::checkpoint`] once before accepting writes.
    pub fn open_durable(
        dir: &Path,
        options: DurabilityOptions,
    ) -> Result<(Engine, DurableBoot), EngineError> {
        let opened =
            DurableStore::open(dir, options).map_err(|e| EngineError::Storage(e.to_string()))?;
        let mut engine = Engine::new();
        match opened {
            Opened::Fresh(store) => {
                engine.durability = Some(Mutex::new(store));
                Ok((engine, DurableBoot::Fresh))
            }
            Opened::Recovered(store, recovery) => {
                // Rebuild the catalog from the checkpoint dumps. Strings
                // re-intern in row order; ids may differ from the crashed
                // process, but every decoded answer is byte-identical —
                // the dictionary is an equality-preserving encoding, not
                // persisted state.
                for dump in &recovery.relations {
                    let types = parse_type_tokens(&dump.name, &dump.types)?;
                    let rows = dump
                        .rows
                        .iter()
                        .map(|cells| Self::type_row(&dump.name, &types, cells))
                        .collect::<Result<Vec<_>, _>>()?;
                    let id = engine.add_relation(&dump.name, &types, rows)?;
                    Arc::make_mut(engine.db.get_mut().unwrap()).restore_version(id, dump.version);
                }
                // Replay the tail through the public write path —
                // durability is not attached yet, so nothing re-logs.
                let mut replayed = 0u64;
                for rec in &recovery.tail {
                    match &rec.record {
                        WalRecord::Batch(batch) => {
                            let version = engine.relation_version(&batch.relation)?;
                            if version != batch.version_before {
                                return Err(EngineError::Storage(format!(
                                    "wal record {} expects relation {} at version {}, found {} — \
                                     the log does not continue this checkpoint",
                                    rec.lsn, batch.relation, batch.version_before, version
                                )));
                            }
                            let id = engine.db.get_mut().unwrap().id_of(&batch.relation)?;
                            let types = engine.schemas[id.0].cols.clone();
                            let ops = batch
                                .ops
                                .iter()
                                .map(|op| {
                                    Ok(match op {
                                        CellOp::Insert(cells) => RowOp::Insert(Self::type_row(
                                            &batch.relation,
                                            &types,
                                            cells,
                                        )?),
                                        CellOp::Delete(cells) => RowOp::Delete(Self::type_row(
                                            &batch.relation,
                                            &types,
                                            cells,
                                        )?),
                                    })
                                })
                                .collect::<Result<Vec<_>, EngineError>>()?;
                            engine.apply_batch(&batch.relation, ops)?;
                        }
                        WalRecord::Compact { relation } => match relation {
                            Some(rel) => {
                                engine.compact_relation(rel)?;
                            }
                            None => {
                                engine.compact();
                            }
                        },
                    }
                    replayed += 1;
                }
                let report = RecoveryReport {
                    checkpoint_id: recovery.checkpoint_id,
                    relations: recovery.relations.len(),
                    replayed_records: replayed,
                    warnings: recovery.warnings,
                };
                engine.durability = Some(Mutex::new(store));
                Ok((engine, DurableBoot::Recovered(report)))
            }
        }
    }

    /// True when this engine logs to a data directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durability counters `STATS` reports; `None` on an in-memory
    /// engine.
    pub fn durability_stats(&self) -> Option<DurabilityCounters> {
        self.durability
            .as_ref()
            .map(|store| store.lock().unwrap().counters())
    }

    /// Writes a checkpoint: fsyncs the WAL, pins its position together
    /// with a consistent database snapshot (both under the write lock),
    /// dumps every relation's decoded rows outside the lock, publishes
    /// atomically, and prunes old checkpoints plus the WAL segments
    /// nothing retained still needs. Logs a `COMPACT`-free, read-only
    /// view — concurrent readers are unaffected; writers wait only for
    /// the position pin, then queue behind the WAL mutex until the dump
    /// is published. Returns `None` on an in-memory engine.
    pub fn checkpoint(&self) -> Result<Option<CheckpointReport>, EngineError> {
        let Some(store) = &self.durability else {
            return Ok(None);
        };
        // Pin (position, snapshot) atomically: holding the db read lock
        // excludes committers (they need the write lock), so no batch
        // can land between the two. Lock order is db before the WAL
        // mutex, the same order `apply_batch` uses — taking the store
        // mutex first would deadlock against a concurrent writer.
        let (pos, next_lsn, db, mut store) = {
            let db = self.db.read().unwrap();
            let mut store = store.lock().unwrap();
            let (pos, next_lsn) = store
                .sync_position()
                .map_err(|e| EngineError::Storage(e.to_string()))?;
            (pos, next_lsn, (*db).clone(), store)
        };
        let dict = self.dict.read().unwrap().clone();
        let mut dumps = Vec::with_capacity(db.len());
        let mut rows_total = 0u64;
        for (id, rel) in db.iter() {
            let types = &self.schemas[id.0].cols;
            let mut rows = Vec::with_capacity(rel.len());
            for tuple in rel.iter_tuples() {
                rows.push(decode_cells(&tuple, types, &dict));
            }
            rows_total += rows.len() as u64;
            dumps.push(RelationDump {
                name: rel.name().to_string(),
                types: types.iter().map(|t| t.to_string()).collect(),
                version: db.version(id),
                rows,
            });
        }
        let manifest = store
            .commit_checkpoint(pos, next_lsn, &dumps)
            .map_err(|e| EngineError::Storage(e.to_string()))?;
        Ok(Some(CheckpointReport {
            id: manifest.id,
            relations: dumps.len(),
            rows: rows_total,
        }))
    }

    /// Writes a checkpoint iff the periodic policy
    /// ([`DurabilityOptions::checkpoint_every`]) says one is due — the
    /// call servers make after each write.
    pub fn maybe_checkpoint(&self) -> Result<Option<CheckpointReport>, EngineError> {
        let due = match &self.durability {
            Some(store) => store.lock().unwrap().checkpoint_due(),
            None => false,
        };
        if due {
            self.checkpoint()
        } else {
            Ok(None)
        }
    }

    /// Logs an explicit compaction (`W COMPACT`) to the WAL, then
    /// performs it. Threshold-triggered compactions are *not* logged —
    /// they are content-neutral and recovery re-triggers them — but an
    /// explicit one is a client-visible command, so replay repeats it.
    pub fn compact_logged(&self, relation: Option<&str>) -> Result<usize, EngineError> {
        let mut db = self.db.write().unwrap();
        if let Some(rel) = relation {
            db.id_of(rel)?; // validate before logging
        }
        if let Some(store) = &self.durability {
            let record = WalRecord::Compact {
                relation: relation.map(|r| r.to_string()),
            };
            store
                .lock()
                .unwrap()
                .log(&record)
                .map_err(|e| EngineError::Storage(e.to_string()))?;
        }
        Ok(match relation {
            Some(rel) => {
                let id = db.id_of(rel)?;
                Arc::make_mut(&mut db).compact(id) as usize
            }
            None => Arc::make_mut(&mut db).compact_all(),
        })
    }

    /// Parses and prepares a query. Planning, GAO selection, and any
    /// physical re-indexing happen **at most once per query shape per
    /// data version**: a repeat prepare (different variable names,
    /// different literal values) returns the cached plan and re-indexed
    /// relations, and every [`PreparedStatement::execute`] after that
    /// goes straight to the probe loop. A write to a relation the shape
    /// touches bumps that relation's version and the next prepare
    /// rebuilds the entry; writes elsewhere leave it warm. Literals never
    /// touch the catalog or dictionary — they become pre-seeded CDS
    /// constraints on this statement.
    ///
    /// The statement is bound to the engine's **current snapshot**: later
    /// writes never change what it returns (snapshot isolation);
    /// re-prepare to observe them.
    pub fn prepare(&self, text: &str) -> Result<PreparedStatement, EngineError> {
        self.parses.fetch_add(1, Ordering::Relaxed);
        let db = self.db();
        let dict = self.dict();
        let ast = parse_query_ast(text)?;
        // Attribute *slots* in first-appearance order: one per variable,
        // one per literal occurrence (literals become hidden attributes
        // pinned by equality seeds).
        let mut slot_ids: HashMap<String, usize> = HashMap::new();
        let mut slot_names: Vec<String> = Vec::new();
        let mut slot_visible: Vec<bool> = Vec::new();
        let mut slot_literals: Vec<(usize, QueryArg)> = Vec::new();
        let mut data_atoms: Vec<(String, Vec<usize>)> = Vec::new();
        for atom in &ast {
            let mut slots = Vec::new();
            for arg in &atom.args {
                let slot = match arg {
                    QueryArg::Var(v) => *slot_ids.entry(v.clone()).or_insert_with(|| {
                        slot_names.push(v.clone());
                        slot_visible.push(true);
                        slot_names.len() - 1
                    }),
                    QueryArg::StrLit(s) => {
                        slot_names.push(format!("{s:?}"));
                        slot_visible.push(false);
                        let a = slot_names.len() - 1;
                        slot_literals.push((a, arg.clone()));
                        a
                    }
                    QueryArg::IntLit(v) => {
                        slot_names.push(v.to_string());
                        slot_visible.push(false);
                        let a = slot_names.len() - 1;
                        slot_literals.push((a, arg.clone()));
                        a
                    }
                };
                slots.push(slot);
            }
            data_atoms.push((atom.relation.clone(), slots));
        }
        // GAO positions consistent with every atom's written column order
        // (shared with `text::parse_query`): first-appearance numbering
        // when feasible, the closest consistent reordering otherwise —
        // this is what lets a literal sit before an already-bound
        // variable, as in `F(a, b), F("jfk", b)`.
        let pos = crate::text::assign_gao_positions(slot_names.len(), &data_atoms)?;
        let n = slot_names.len();
        let mut attr_names = vec![String::new(); n];
        let mut visible = vec![false; n];
        for slot in 0..n {
            attr_names[pos[slot]] = slot_names[slot].clone();
            visible[pos[slot]] = slot_visible[slot];
        }
        let mut query = Query::new(n);
        for (name, slots) in data_atoms {
            let rel = db
                .id_of(&name)
                .map_err(|_| TextError::UnknownRelation(name.clone()))?;
            let arity = db.relation(rel).arity();
            if arity != slots.len() {
                return Err(TextError::AtomArity {
                    relation: name,
                    atom: slots.len(),
                    relation_arity: arity,
                }
                .into());
            }
            query.atoms.push(Atom {
                rel,
                attrs: slots.iter().map(|&s| pos[s]).collect(),
            });
        }
        let (entry, hit) = self.entry_for(&db, &query, &attr_names)?;
        // Literals: type-check against the column the slot landed in,
        // then encode as equality seeds. A string the dictionary snapshot
        // has never seen cannot occur in this statement's database
        // snapshot (interning happens before a write lands), so the
        // statement is vacuously empty.
        let mut seeds: Vec<(usize, Val)> = Vec::new();
        let mut vacuous = false;
        for (slot, arg) in slot_literals {
            let attr = pos[slot];
            let column_ty = entry.attr_types[attr];
            let lit_ty = match arg {
                QueryArg::StrLit(_) => ColumnType::Str,
                QueryArg::IntLit(_) => ColumnType::Int,
                QueryArg::Var(_) => unreachable!("only literals are recorded"),
            };
            if lit_ty != column_ty {
                return Err(EngineError::TypeMismatch {
                    attr: attr_names[attr].clone(),
                    expected: column_ty,
                    found: lit_ty,
                });
            }
            match arg {
                QueryArg::IntLit(v) => seeds.push((attr, v)),
                QueryArg::StrLit(s) => match dict.id_of(&s) {
                    Some(id) => seeds.push((attr, id)),
                    None => vacuous = true,
                },
                QueryArg::Var(_) => unreachable!(),
            }
        }
        Ok(PreparedStatement {
            db,
            dict,
            entry,
            attr_names,
            visible,
            seeds,
            vacuous,
            hit,
        })
    }

    /// Prepares an already-built [`Query`] over this engine's database —
    /// the programmatic twin of [`Engine::prepare`], sharing the same
    /// plan/re-index cache (bench harnesses and embedded callers use
    /// this). Attributes are named by position (`a0`, `a1`, …).
    pub fn prepare_query(&self, query: &Query) -> Result<PreparedStatement, EngineError> {
        let db = self.db();
        let attr_names: Vec<String> = (0..query.n_attrs).map(|a| format!("a{a}")).collect();
        let (entry, hit) = self.entry_for(&db, query, &attr_names)?;
        Ok(PreparedStatement {
            db,
            dict: self.dict(),
            entry,
            visible: vec![true; attr_names.len()],
            attr_names,
            seeds: Vec::new(),
            vacuous: false,
            hit,
        })
    }

    /// One-shot convenience: prepare (against the cache) and execute.
    pub fn execute(&self, text: &str, opts: &ExecOptions) -> Result<StatementResult, EngineError> {
        self.prepare(text)?.execute(opts)
    }

    /// Cache lookup / population for a structural query against one
    /// database snapshot. An entry hits only when the versions of every
    /// relation the shape touches still match `db` — a write to one of
    /// them bumps its version and the stale entry is rebuilt (and
    /// replaced) here; writes to other relations leave it warm.
    fn entry_for(
        &self,
        db: &Arc<Database>,
        query: &Query,
        attr_names: &[String],
    ) -> Result<(Arc<CachedStatement>, bool), EngineError> {
        // Guard stale handles before any indexing: a Query built against
        // a different database must error, not panic.
        if let Some(atom) = query.atoms.iter().find(|a| a.rel.0 >= db.len()) {
            return Err(EngineError::Storage(format!(
                "relation id {} is not in this engine's catalog",
                atom.rel.0
            )));
        }
        let mut rels: Vec<RelId> = query.atoms.iter().map(|a| a.rel).collect();
        rels.sort_unstable();
        rels.dedup();
        let versions: Vec<(RelId, u64)> = rels.into_iter().map(|r| (r, db.version(r))).collect();
        let key = shape_key(query);
        if let Some(entry) = self.cache.read().unwrap().get(&key) {
            if entry.versions == versions {
                return Ok((Arc::clone(entry), true));
            }
        }
        // Plan outside any lock: planning is pure and read-only, so two
        // threads racing on a cold shape at worst both plan — the loser's
        // entry is discarded below, keeping plan identity one-per-shape
        // (per data version).
        let attr_types = self.unify_attr_types(query, attr_names)?;
        let plan = plan(db, query)?;
        let mut cache = self.cache.write().unwrap();
        if let Some(entry) = cache.get(&key) {
            if entry.versions == versions {
                return Ok((Arc::clone(entry), true));
            }
        }
        let id = self.next_plan_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(CachedStatement {
            id,
            query: query.clone(),
            plan,
            exec: OnceLock::new(),
            attr_types,
            versions,
        });
        cache.insert(key, Arc::clone(&entry));
        Ok((entry, false))
    }

    /// Derives each attribute's value type from the columns binding it,
    /// rejecting conflicting bindings.
    fn unify_attr_types(
        &self,
        query: &Query,
        attr_names: &[String],
    ) -> Result<Vec<ColumnType>, EngineError> {
        let mut types: Vec<Option<ColumnType>> = vec![None; query.n_attrs];
        for atom in &query.atoms {
            let schema = &self.schemas[atom.rel.0];
            for (col, &a) in atom.attrs.iter().enumerate() {
                let Some(&ty) = schema.cols.get(col) else {
                    continue; // arity mismatch; plan() reports it properly
                };
                match types.get(a).copied().flatten() {
                    None => {
                        if let Some(slot) = types.get_mut(a) {
                            *slot = Some(ty);
                        }
                    }
                    Some(prev) if prev != ty => {
                        return Err(EngineError::TypeMismatch {
                            attr: attr_names
                                .get(a)
                                .cloned()
                                .unwrap_or_else(|| format!("a{a}")),
                            expected: prev,
                            found: ty,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
        Ok(types
            .into_iter()
            .map(|t| t.unwrap_or(ColumnType::Int))
            .collect())
    }
}

/// A structural cache key: two query texts with the same atoms over the
/// same relations — whatever the variables are called, whatever constants
/// the literals carry — share one entry.
fn shape_key(query: &Query) -> String {
    use std::fmt::Write;
    let mut key = format!("{}", query.n_attrs);
    for atom in &query.atoms {
        let _ = write!(key, "|{}:{:?}", atom.rel.0, atom.attrs);
    }
    key
}

/// The materialized outcome of [`PreparedStatement::execute`].
#[derive(Debug, Clone)]
pub struct StatementResult {
    /// Output column names (hidden literal positions excluded).
    pub columns: Vec<String>,
    /// Decoded rows.
    pub rows: Vec<Vec<Value>>,
    /// Execution counters, when [`ExecOptions::collect_stats`] was set.
    pub stats: Option<ExecStats>,
    /// Per-shard counters, when the sharded engine ran with stats.
    pub shards: Option<Vec<minesweeper_core::ShardStats>>,
    /// True when a `limit` actually cut materialized rows; a result that
    /// merely equals the limit is complete and not flagged.
    pub truncated: bool,
}

/// A prepared query handle (see [`Engine::prepare`]): parsing, planning,
/// and any GAO re-indexing are already done and cached; `execute` /
/// `stream` go straight to the probe loop. A statement owns `Arc`
/// snapshots of the database and dictionary taken at prepare time, so any
/// number can be live at once and **later writes never change what a
/// statement returns** — snapshot isolation; re-prepare to observe a new
/// version.
pub struct PreparedStatement {
    /// The database version this statement is bound to.
    db: Arc<Database>,
    /// Dictionary snapshot for decode (append-only, ≥ the db snapshot).
    dict: Arc<Dictionary>,
    entry: Arc<CachedStatement>,
    attr_names: Vec<String>,
    /// `visible[a]` = attribute `a` appears in the caller's output
    /// (literal-bound positions are hidden).
    visible: Vec<bool>,
    /// Equality seeds `(attr, encoded value)` from query literals,
    /// original numbering.
    seeds: Vec<(usize, Val)>,
    /// True when a string literal can never match any stored value in
    /// this statement's snapshot (it was never interned): the statement's
    /// result is empty without running anything.
    vacuous: bool,
    hit: bool,
}

impl PreparedStatement {
    /// Output column names (hidden literal positions excluded).
    pub fn columns(&self) -> Vec<String> {
        self.attr_names
            .iter()
            .zip(&self.visible)
            .filter(|&(_, &v)| v)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// The cached plan.
    pub fn plan(&self) -> &Plan {
        &self.entry.plan
    }

    /// Stable identity of the cached plan: equal ids ⇒ the statements
    /// share one plan and one set of re-indexed relations.
    pub fn plan_id(&self) -> u64 {
        self.entry.id
    }

    /// True when this statement was served from the engine's cache (its
    /// plan and re-indexed relations were built by an earlier prepare).
    pub fn cache_hit(&self) -> bool {
        self.hit
    }

    /// True when every relation this statement touches still carries the
    /// version it was prepared against in `db`. A service holding
    /// statements across requests (the `PREPARE` verb) checks this before
    /// each execution: a statement always answers from its own snapshot
    /// (isolation), so a `false` here means re-preparing is required for
    /// the execution to observe later writes.
    pub fn is_current(&self, db: &Database) -> bool {
        self.entry
            .versions
            .iter()
            .all(|&(rel, version)| db.version(rel) == version)
    }

    /// The worker count `opts` resolves to: `Some(t)` when the sharded
    /// engine will run with `t` workers (explicit `threads`, or
    /// `minesweeper-par`'s hardware default), `None` for serial and
    /// baseline execution. The CLI uses this instead of re-deriving
    /// defaults.
    pub fn effective_threads(&self, opts: &ExecOptions) -> Result<Option<usize>, EngineError> {
        Ok(match self.dispatch(opts)? {
            Dispatch::Parallel(t) => Some(t),
            Dispatch::Serial | Dispatch::Baseline(_) => None,
        })
    }

    /// The evaluator `opts` resolves to, as data: which engine runs, how
    /// many workers, or which registry baseline. The CLI and the server
    /// both branch on this (rather than re-deriving it from flag
    /// combinations), and the server's admission control prices a
    /// request by its [`DispatchKind::worker_cost`].
    pub fn dispatch_kind(&self, opts: &ExecOptions) -> Result<DispatchKind, EngineError> {
        Ok(match self.dispatch(opts)? {
            Dispatch::Serial => DispatchKind::Serial,
            Dispatch::Parallel(t) => DispatchKind::Parallel(t),
            Dispatch::Baseline(a) => DispatchKind::Baseline(a.name().to_string()),
        })
    }

    /// The structured explanation for an execution with `opts`: the
    /// plan's decisions plus attribute/relation names, the shard strategy
    /// (when `opts` selects the parallel engine), and the cache
    /// provenance. Serialize with [`ExplainPlan::to_json`]; render with
    /// [`ExplainPlan::render`].
    ///
    /// The shard strategy is data-dependent, so a parallel explain binds
    /// the statement's execution (building the GAO re-index when the
    /// plan demands one) to inspect the *actual* split. That bind fills
    /// the same per-shape cache a later `execute` reuses — the cost is
    /// paid at most once per query shape, not per explain.
    pub fn explain(&self, opts: &ExecOptions) -> Result<ExplainPlan, EngineError> {
        let dispatch = self.dispatch(opts)?;
        let mut ep = self.entry.plan.explain_plan();
        ep.attr_names = Some(self.attr_names.clone());
        for (atom, ea) in self.entry.query.atoms.iter().zip(ep.atoms.iter_mut()) {
            ea.relation = Some(self.db.relation(atom.rel).name().to_string());
        }
        ep.cache = Some(ExplainCache {
            hit: self.hit,
            plan_id: self.entry.id,
        });
        let (dense, words) = self
            .entry
            .query
            .atoms
            .iter()
            .fold((0u64, 0u64), |(d, w), a| {
                let t = self.db.probe_target(a.rel);
                (d + t.dense_runs(), w + t.words_total())
            });
        ep.storage = Some(ExplainStorage {
            leaf: self.db.leaf_policy().label().to_string(),
            dense_leaves: dense,
            bitset_words: words,
        });
        match dispatch {
            Dispatch::Parallel(threads) => {
                // The split is data-dependent, so the explain inspects
                // the actual tasks the bound execution would run; the
                // bind lands in the shared per-shape cache, so a later
                // execute skips it.
                let specs = self.entry.exec(&self.db).shard_specs(&self.db, threads);
                ep.shards = Some(ExplainShards {
                    threads,
                    tasks: specs.len(),
                    strategy: shard_strategy(&specs, threads).to_string(),
                    merge: minesweeper_core::MERGE_STRATEGY.to_string(),
                    detail: SHARD_DETAIL.to_string(),
                });
            }
            Dispatch::Baseline(algo) => ep.algorithm = algo.name().to_string(),
            Dispatch::Serial => {}
        }
        Ok(ep)
    }

    /// Resolves the evaluator `opts` selects.
    fn dispatch(&self, opts: &ExecOptions) -> Result<Dispatch, EngineError> {
        let threads = if opts.threads > 0 {
            Some(opts.threads)
        } else {
            None
        };
        // Any explicit thread count — including 1 — selects the sharded
        // engine, so callers asking for "the threaded engine, one worker"
        // get real shard accounting rather than a silent serial fallback.
        match opts.algo.as_deref() {
            None => Ok(match threads {
                Some(t) => Dispatch::Parallel(t),
                None => Dispatch::Serial,
            }),
            Some(name) => {
                let algo = lookup_configured(name, threads)
                    .ok_or_else(|| EngineError::UnknownAlgorithm(name.to_string()))?;
                Ok(match algo.name() {
                    // The cached plan paths: the registry entries would
                    // re-plan per call, the cache must not.
                    "minesweeper" => match threads {
                        Some(t) => Dispatch::Parallel(t),
                        None => Dispatch::Serial,
                    },
                    "minesweeper-par" => Dispatch::Parallel(
                        threads.unwrap_or_else(|| MinesweeperPar::default().threads),
                    ),
                    _ => Dispatch::Baseline(algo),
                })
            }
        }
    }

    /// Decodes one stored tuple into the visible, typed output row.
    fn decode_row(&self, t: &[Val]) -> Vec<Value> {
        decode(&self.dict, &self.entry.attr_types, &self.visible, t)
    }

    /// True when `t` satisfies every literal seed (baseline evaluators
    /// run the unconstrained shape and are filtered here).
    fn matches_seeds(&self, t: &[Val]) -> bool {
        self.seeds.iter().all(|&(a, v)| t[a] == v)
    }

    /// Runs the statement to completion (modulo `limit`) and decodes the
    /// result. Rows are sorted lexicographically in the query's attribute
    /// order — for every evaluator, so results are directly comparable
    /// across `algo` choices.
    pub fn execute(&self, opts: &ExecOptions) -> Result<StatementResult, EngineError> {
        let entry = &self.entry;
        let db = &self.db;
        if deadline_expired(opts.deadline) {
            return Err(EngineError::DeadlineExceeded);
        }
        if self.vacuous {
            let _ = self.dispatch(opts)?; // still surface unknown-algo errors
            return Ok(StatementResult {
                columns: self.columns(),
                rows: Vec::new(),
                stats: opts.collect_stats.then(ExecStats::new),
                shards: None,
                truncated: false,
            });
        }
        let (tuples, stats, shards, truncated) = match self.dispatch(opts)? {
            Dispatch::Serial => match opts.limit {
                None if opts.deadline.is_none() => {
                    let exec = entry.exec(db).execute_seeded(db, &self.seeds);
                    (exec.result.tuples, exec.result.stats, None, false)
                }
                None => {
                    // Deadline-aware materialization: collect from the
                    // lazy stream (checking the clock between tuples) and
                    // sort — the same set of tuples `execute_seeded`
                    // materializes, in the same final order, but it can
                    // stop mid-probe instead of running to completion.
                    let mut stream = entry.exec(db).stream_seeded(db, &self.seeds);
                    let mut tuples: Vec<Tuple> = Vec::new();
                    loop {
                        if deadline_expired(opts.deadline) {
                            return Err(EngineError::DeadlineExceeded);
                        }
                        match stream.next() {
                            Some(t) => tuples.push(t),
                            None => break,
                        }
                    }
                    let stats = stream.stats();
                    tuples.sort_unstable();
                    (tuples, stats, None, false)
                }
                Some(k) => {
                    // Limit pushdown: the probe loop stops after k
                    // certified tuples (plus one peek for the truncation
                    // flag); the suffix's certificate work is never paid.
                    // Stats are snapshotted before the peek so they
                    // reflect only the shown prefix.
                    let mut stream = entry.exec(db).stream_seeded(db, &self.seeds);
                    let mut tuples: Vec<Tuple> = Vec::with_capacity(k.min(1 << 12));
                    while tuples.len() < k {
                        if deadline_expired(opts.deadline) {
                            return Err(EngineError::DeadlineExceeded);
                        }
                        match stream.next() {
                            Some(t) => tuples.push(t),
                            None => break,
                        }
                    }
                    let stats = stream.stats();
                    let truncated = stream.next().is_some();
                    tuples.sort_unstable();
                    (tuples, stats, None, truncated)
                }
            },
            Dispatch::Parallel(threads) if opts.deadline.is_none() => {
                let sharded =
                    entry
                        .exec(db)
                        .execute_parallel_seeded(db, threads, opts.limit, &self.seeds);
                let truncated = sharded.truncated;
                (
                    sharded.result.tuples,
                    sharded.result.stats,
                    Some(sharded.shards),
                    truncated,
                )
            }
            Dispatch::Parallel(threads) => {
                // Deadline-aware parallel materialization through the
                // global-order merge; on expiry the early return drops
                // the sharded stream, which cancels queued and in-flight
                // shard tasks exactly like a client disconnect.
                let mut stream =
                    entry
                        .exec(db)
                        .stream_parallel_seeded(db, threads, opts.limit, &self.seeds);
                let cap = opts.limit.unwrap_or(usize::MAX);
                let mut tuples: Vec<Tuple> = Vec::new();
                while tuples.len() < cap {
                    if deadline_expired(opts.deadline) {
                        return Err(EngineError::DeadlineExceeded);
                    }
                    match stream.next() {
                        Some(t) => tuples.push(t),
                        None => break,
                    }
                }
                let truncated = opts.limit.is_some_and(|k| tuples.len() == k) && stream.truncated();
                let report = stream.finish();
                tuples.sort_unstable();
                (tuples, report.stats, Some(report.shards), truncated)
            }
            Dispatch::Baseline(algo) => {
                let res = algo.run(db, &entry.query)?;
                // Baselines are all-at-once evaluators with no yield
                // points; the deadline is honoured at completion.
                if deadline_expired(opts.deadline) {
                    return Err(EngineError::DeadlineExceeded);
                }
                let mut tuples: Vec<Tuple> = res
                    .tuples
                    .into_iter()
                    .filter(|t| self.matches_seeds(t))
                    .collect();
                let total = tuples.len();
                if let Some(k) = opts.limit {
                    tuples.truncate(k);
                }
                let truncated = total > tuples.len();
                (tuples, res.stats, None, truncated)
            }
        };
        Ok(StatementResult {
            columns: self.columns(),
            rows: tuples.iter().map(|t| self.decode_row(t)).collect(),
            stats: opts.collect_stats.then_some(stats),
            shards: if opts.collect_stats { shards } else { None },
            truncated,
        })
    }

    /// Opens a decoded stream over the statement.
    ///
    /// With the serial Minesweeper engine the stream is **lazy**: rows
    /// are yielded as the probe loop certifies them (global attribute
    /// order), and dropping the stream early skips the remaining
    /// certificate work. With the parallel engine the stream is
    /// **incremental**: shard tasks run on background workers feeding
    /// bounded channels into a global-order heap merge, rows arrive
    /// **byte-identical to the serial stream's sequence** (re-indexed
    /// GAO or not), and dropping the stream cancels queued and in-flight
    /// shards — `--limit` and `--threads` compose exactly. Baselines
    /// materialize eagerly and the stream then yields the rows. Either
    /// way `opts.limit` caps the yielded rows.
    pub fn stream(&self, opts: &ExecOptions) -> Result<StatementStream<'_>, EngineError> {
        let inner = if self.vacuous {
            let _ = self.dispatch(opts)?;
            StreamInner::Materialized(Vec::new().into_iter(), ExecStats::new())
        } else {
            match self.dispatch(opts)? {
                Dispatch::Serial => StreamInner::Lazy(
                    self.entry
                        .exec(&self.db)
                        .stream_seeded(&self.db, &self.seeds),
                ),
                Dispatch::Parallel(threads) => {
                    StreamInner::Sharded(self.entry.exec(&self.db).stream_parallel_seeded(
                        &self.db,
                        threads,
                        opts.limit,
                        &self.seeds,
                    ))
                }
                Dispatch::Baseline(algo) => {
                    let res = algo.run(&self.db, &self.entry.query)?;
                    let tuples: Vec<Tuple> = res
                        .tuples
                        .into_iter()
                        .filter(|t| self.matches_seeds(t))
                        .collect();
                    StreamInner::Materialized(tuples.into_iter(), res.stats)
                }
            }
        };
        Ok(StatementStream {
            dict: Arc::clone(&self.dict),
            entry: Arc::clone(&self.entry),
            visible: self.visible.clone(),
            inner,
            remaining: opts.limit.unwrap_or(usize::MAX),
            deadline: opts.deadline,
            expired: false,
        })
    }
}

/// Shared row decode used by statements and streams.
fn decode(dict: &Dictionary, attr_types: &[ColumnType], visible: &[bool], t: &[Val]) -> Vec<Value> {
    t.iter()
        .enumerate()
        .filter(|&(a, _)| visible[a])
        .map(|(a, &v)| match attr_types[a] {
            ColumnType::Int => Value::Int(v),
            ColumnType::Str => Value::Str(
                dict.resolve(v)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("#{v}")),
            ),
        })
        .collect()
}

/// The evaluator an [`ExecOptions`] resolves to.
enum Dispatch {
    Serial,
    Parallel(usize),
    Baseline(Box<dyn minesweeper_core::Algorithm>),
}

/// The public form of the dispatch decision (see
/// [`PreparedStatement::dispatch_kind`]): which evaluator an
/// [`ExecOptions`] selects for a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchKind {
    /// The serial Minesweeper probe loop on the cached plan.
    Serial,
    /// The sharded parallel engine with this many workers.
    Parallel(usize),
    /// A registry baseline, by canonical name.
    Baseline(String),
}

impl DispatchKind {
    /// How many pool workers the request occupies while it runs — what
    /// the server's admission control debits from its global budget. A
    /// serial or baseline execution costs one worker; a parallel one
    /// costs its thread count.
    pub fn worker_cost(&self) -> usize {
        match self {
            DispatchKind::Parallel(t) => (*t).max(1),
            DispatchKind::Serial | DispatchKind::Baseline(_) => 1,
        }
    }
}

enum StreamInner<'e> {
    Lazy(minesweeper_core::TupleStream<'e>),
    Sharded(minesweeper_core::ShardedStream),
    Materialized(std::vec::IntoIter<Tuple>, ExecStats),
}

/// A decoded row stream (see [`PreparedStatement::stream`]). The lifetime
/// ties lazy serial streams to the statement's database snapshot; the
/// dictionary snapshot is owned, so decoding never takes a lock.
pub struct StatementStream<'e> {
    dict: Arc<Dictionary>,
    entry: Arc<CachedStatement>,
    visible: Vec<bool>,
    inner: StreamInner<'e>,
    remaining: usize,
    /// Clock bound from [`ExecOptions::deadline`], checked before every
    /// yield; once it passes, the stream reports exhaustion and
    /// [`StatementStream::deadline_expired`] turns true.
    deadline: Option<Instant>,
    expired: bool,
}

impl StatementStream<'_> {
    /// Execution counters so far (live mid-stream on the lazy path; the
    /// sum over finished shards on the parallel path — use
    /// [`StatementStream::finish`] for final, stable parallel counters;
    /// complete from the start on materialized paths).
    pub fn stats(&self) -> ExecStats {
        match &self.inner {
            StreamInner::Lazy(s) => s.stats(),
            StreamInner::Sharded(s) => s.stats(),
            StreamInner::Materialized(_, stats) => stats.clone(),
        }
    }

    /// True when the stream stopped because its deadline passed rather
    /// than because the result (or its `limit`) was exhausted. Callers
    /// that saw `next()` return `None` branch on this to tell a complete
    /// body from a cancelled one.
    pub fn deadline_expired(&self) -> bool {
        self.expired
    }

    /// After the stream has yielded its `limit` rows, reports whether at
    /// least one more row existed — the truthfulness check behind the
    /// CLI's truncation marker. Bypasses the limit to probe exactly one
    /// tuple further (parallel workers emit one tuple of truncation
    /// evidence beyond the cap for exactly this call).
    pub fn truncated(&mut self) -> bool {
        match &mut self.inner {
            StreamInner::Lazy(s) => s.next().is_some(),
            StreamInner::Sharded(s) => s.truncated(),
            StreamInner::Materialized(it, _) => it.next().is_some(),
        }
    }

    /// Consumes the stream and returns final counters: on the parallel
    /// path this cancels outstanding shard work, joins the workers, and
    /// returns the complete per-shard breakdown; other paths return
    /// their counters with no shard list.
    pub fn finish(self) -> (ExecStats, Option<Vec<minesweeper_core::ShardStats>>) {
        match self.inner {
            StreamInner::Lazy(s) => (s.stats(), None),
            StreamInner::Sharded(s) => {
                let report = s.finish();
                (report.stats, Some(report.shards))
            }
            StreamInner::Materialized(_, stats) => (stats, None),
        }
    }
}

impl Iterator for StatementStream<'_> {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        if self.remaining == 0 || self.expired {
            return None;
        }
        if deadline_expired(self.deadline) {
            // The underlying stream is simply never pulled again; when
            // it drops (or `finish` consumes it), queued and in-flight
            // shard work is cancelled — the disconnect path's machinery,
            // triggered by the clock instead of a failed write.
            self.expired = true;
            return None;
        }
        self.remaining -= 1;
        let t = match &mut self.inner {
            StreamInner::Lazy(s) => s.next()?,
            StreamInner::Sharded(s) => s.next()?,
            StreamInner::Materialized(it, _) => it.next()?,
        };
        Some(decode(
            &self.dict,
            &self.entry.attr_types,
            &self.visible,
            &t,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights_engine() -> Engine {
        let mut e = Engine::new();
        e.add_relation(
            "F",
            &[ColumnType::Str, ColumnType::Str],
            [
                vec![Value::from("jfk"), Value::from("lhr")],
                vec![Value::from("lhr"), Value::from("nrt")],
                vec![Value::from("sfo"), Value::from("jfk")],
                vec![Value::from("jfk"), Value::from("nrt")],
            ],
        )
        .unwrap();
        e
    }

    #[test]
    fn string_join_round_trips() {
        let e = flights_engine();
        let stmt = e.prepare("F(a, b), F(b, c)").unwrap();
        assert!(!stmt.cache_hit());
        let res = stmt.execute(&ExecOptions::default()).unwrap();
        assert_eq!(res.columns, vec!["a", "b", "c"]);
        let rows: Vec<Vec<&str>> = res
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.as_str().unwrap()).collect())
            .collect();
        assert!(rows.contains(&vec!["jfk", "lhr", "nrt"]));
        assert!(rows.contains(&vec!["sfo", "jfk", "lhr"]));
        assert!(rows.contains(&vec!["sfo", "jfk", "nrt"]));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn repeat_prepare_hits_the_cache_with_stable_identity() {
        let e = flights_engine();
        let first = e.prepare("F(a, b), F(b, c)").unwrap();
        assert!(!first.cache_hit());
        let id0 = first.plan_id();
        // Different variable names, same shape: cache hit, same plan —
        // and both statements are alive at once.
        let stmt = e.prepare("F(x, y), F(y, z)").unwrap();
        assert!(stmt.cache_hit());
        assert_eq!(stmt.plan_id(), id0);
        assert_eq!(stmt.columns(), vec!["x", "y", "z"]);
        let ep = stmt.explain(&ExecOptions::default()).unwrap();
        assert_eq!(
            ep.cache,
            Some(ExplainCache {
                hit: true,
                plan_id: id0
            })
        );
        assert_eq!(
            first.execute(&ExecOptions::default()).unwrap().rows,
            stmt.execute(&ExecOptions::default()).unwrap().rows
        );
    }

    #[test]
    fn literal_values_share_one_cache_entry() {
        let e = flights_engine();
        let to_nrt = e.prepare("F(a, \"nrt\")").unwrap();
        let to_lhr = e.prepare("F(a, \"lhr\")").unwrap();
        let plain = e.prepare("F(a, b)").unwrap();
        // One shape, one plan — the literal is a per-statement seed.
        assert_eq!(to_nrt.plan_id(), to_lhr.plan_id());
        assert_eq!(to_nrt.plan_id(), plain.plan_id());
        assert!(to_lhr.cache_hit() && plain.cache_hit());
        let nrt = to_nrt.execute(&ExecOptions::default()).unwrap();
        assert_eq!(
            nrt.rows,
            vec![vec![Value::from("jfk")], vec![Value::from("lhr")]]
        );
        let lhr = to_lhr.execute(&ExecOptions::default()).unwrap();
        assert_eq!(lhr.rows, vec![vec![Value::from("jfk")]]);
        assert_eq!(
            plain.execute(&ExecOptions::default()).unwrap().rows.len(),
            4
        );
    }

    #[test]
    fn literals_constrain_and_are_hidden() {
        let e = flights_engine();
        let stmt = e.prepare("F(a, \"nrt\")").unwrap();
        assert_eq!(stmt.columns(), vec!["a"]);
        let res = stmt.execute(&ExecOptions::default()).unwrap();
        assert_eq!(
            res.rows,
            vec![vec![Value::from("jfk")], vec![Value::from("lhr")]]
        );
        // A literal that appears in no data row matches nothing — and
        // leaves no trace in the catalog or dictionary.
        let rels = e.db().len();
        let words = e.dict().len();
        let none = e
            .prepare("F(a, \"never-seen\")")
            .unwrap()
            .execute(&ExecOptions::default())
            .unwrap();
        assert!(none.rows.is_empty());
        assert_eq!(e.db().len(), rels, "no literal relations created");
        assert_eq!(e.dict().len(), words, "no literal interning");
    }

    #[test]
    fn int_literal_and_type_checks() {
        let mut e = Engine::new();
        e.add_relation(
            "R",
            &[ColumnType::Int, ColumnType::Str],
            [
                vec![Value::Int(1), Value::from("one")],
                vec![Value::Int(2), Value::from("two")],
            ],
        )
        .unwrap();
        let res = e
            .prepare("R(2, name)")
            .unwrap()
            .execute(&ExecOptions::default())
            .unwrap();
        assert_eq!(res.rows, vec![vec![Value::from("two")]]);
        // Binding a string literal into the int column is a type error.
        assert!(matches!(
            e.prepare("R(\"x\", name)"),
            Err(EngineError::TypeMismatch { .. })
        ));
        // And an int literal into the string column likewise.
        assert!(matches!(
            e.prepare("R(x, 7)"),
            Err(EngineError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn baseline_dispatch_never_builds_the_reindex() {
        // A shape whose written order is not a NEO: the Minesweeper path
        // must re-index, but a baseline runs on the stored indexes, so
        // the expensive bind must stay unbuilt until a planner path asks.
        let mut e = Engine::new();
        e.load_tsv("R", "1 2\n3 4\n").unwrap();
        e.load_tsv("S", "5 2\n6 4\n").unwrap();
        let stmt = e.prepare("R(a, c), S(b, c)").unwrap();
        assert!(stmt.plan().is_reindexed());
        assert!(stmt.entry.exec.get().is_none(), "lazy until needed");
        let base = stmt
            .execute(&ExecOptions::default().with_algo("naive"))
            .unwrap();
        assert!(
            stmt.entry.exec.get().is_none(),
            "baseline dispatch skips the physical re-index"
        );
        let ms = stmt.execute(&ExecOptions::default()).unwrap();
        assert!(stmt.entry.exec.get().is_some(), "built on first use");
        assert_eq!(base.rows, ms.rows);
    }

    #[test]
    fn row_arity_reported_distinctly() {
        let mut e = Engine::new();
        let err = e
            .add_relation(
                "R",
                &[ColumnType::Int, ColumnType::Int],
                [vec![Value::Int(1), Value::Int(2), Value::Int(3)]],
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::RowArity {
                    expected: 2,
                    got: 3,
                    ..
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("3 cells"), "{err}");
    }

    #[test]
    fn value_type_checked_at_load() {
        let mut e = Engine::new();
        let err = e
            .add_relation("R", &[ColumnType::Int], [vec![Value::from("not-an-int")]])
            .unwrap_err();
        assert!(matches!(err, EngineError::ValueType { column: 0, .. }));
    }

    #[test]
    fn unknown_algo_reported() {
        let e = flights_engine();
        let stmt = e.prepare("F(a, b)").unwrap();
        let err = stmt
            .execute(&ExecOptions::default().with_algo("quantum"))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownAlgorithm(_)));
        assert_eq!(
            stmt.effective_threads(&ExecOptions::default().with_algo("minesweeper-par"))
                .unwrap()
                .map(|t| t >= 1),
            Some(true),
            "minesweeper-par resolves to a concrete worker count"
        );
    }
}
