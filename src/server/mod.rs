//! `msj serve` — the concurrent query service front door.
//!
//! A std-only TCP line-protocol server over the engine: one process owns
//! one [`Engine`] (database + plan/re-index caches) behind an [`Arc`],
//! and any number of concurrent client connections execute queries
//! against it. The subsystem splits into:
//!
//! * [`protocol`] — the request grammar and response framing (and the
//!   client-side classifier for it);
//! * `session` (private) — the per-connection loop: parse, admit,
//!   execute, stream, and the disconnect-triggers-cancellation path;
//! * [`admission`] — the global [`WorkerBudget`] semaphore bounding the
//!   total pool workers in flight across all connections;
//! * [`client`] — a small blocking client used by `msj client`, the
//!   integration tests, and the `serve_load` generator.
//!
//! The service's contract, tested end to end in `tests/server.rs`:
//!
//! 1. **Byte identity** — a response body, `|` prefixes stripped, is
//!    byte-identical to the `msj` CLI's stdout for the same query and
//!    options (both call [`crate::render`]).
//! 2. **Admission** — with budget `B`, the peak sum of declared worker
//!    costs in flight never exceeds `B`; excess requests queue and all
//!    eventually complete.
//! 3. **Cancellation** — a client that disconnects mid-stream stops its
//!    query: the tuple stream is dropped, shard workers are cancelled,
//!    and the work counters stop advancing.

pub mod admission;
pub mod client;
pub mod protocol;
mod session;

pub use admission::{Permit, WorkerBudget};
pub use client::{Client, Reply};
pub use protocol::{ExplainFormat, Request, ResponseLine, WriteAction};

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::engine::Engine;
use crate::render::BodyOutcome;

/// The default worker budget when `--budget` is not given: one worker
/// per logical CPU, the same capacity one all-cores parallel query uses.
pub fn default_budget() -> usize {
    thread::available_parallelism().map_or(4, |n| n.get())
}

/// Default body-flush watermark in buffered lines (`--flush-rows`).
pub const DEFAULT_FLUSH_ROWS: usize = 128;

/// Default body-flush watermark in buffered bytes (`--flush-bytes`).
pub const DEFAULT_FLUSH_BYTES: usize = 32 * 1024;

/// Service configuration beyond the bind address (the `serve` flags;
/// see `docs/OPERATIONS.md` for the operator view of each knob).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Global admission budget in pool workers (`--budget`).
    pub budget: usize,
    /// Deadline budget applied to every query request that does not
    /// carry its own `timeout=` (`--default-timeout`); `None` leaves
    /// such requests untimed.
    pub default_timeout: Option<Duration>,
    /// Coalescing writer watermark: flush the response body once this
    /// many lines are buffered (`--flush-rows`). The first body line of
    /// a response always flushes immediately, whatever the watermarks
    /// say, so `limit=k` first-row latency stays one flush.
    pub flush_rows: usize,
    /// Coalescing writer watermark: flush once this many bytes are
    /// buffered (`--flush-bytes`), whichever watermark trips first.
    pub flush_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            budget: default_budget(),
            default_timeout: None,
            flush_rows: DEFAULT_FLUSH_ROWS,
            flush_bytes: DEFAULT_FLUSH_BYTES,
        }
    }
}

/// State shared by the accept loop and every session thread.
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) budget: WorkerBudget,
    pub(crate) metrics: Metrics,
    pub(crate) options: ServerOptions,
    shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// A coherent-enough snapshot of the service counters (each counter
    /// is individually consistent; the set is not a transaction).
    pub(crate) fn stats(&self) -> ServerStats {
        let m = &self.metrics;
        let (in_flight, peak) = self.budget.in_flight_and_peak();
        // The sum of all relation version counters: a global monotone
        // data-version clock. Two STATS snapshots with equal
        // `data_version` saw identical logical data.
        let data_version = self
            .engine
            .db()
            .versions()
            .iter()
            .map(|&(_, v)| v)
            .sum::<u64>();
        // Durability numbers come from the engine's store, not Metrics:
        // the WAL/checkpoint machinery is the source of truth and also
        // counts recovery-time work no session ever saw.
        let d = self.engine.durability_stats().unwrap_or_default();
        ServerStats {
            connections: m.connections.load(Ordering::Relaxed),
            active: m.active.load(Ordering::Relaxed),
            requests: m.requests.load(Ordering::Relaxed),
            errors: m.errors.load(Ordering::Relaxed),
            rows: m.rows.load(Ordering::Relaxed),
            disconnects: m.disconnects.load(Ordering::Relaxed),
            outputs: m.outputs.load(Ordering::Relaxed),
            find_gap_calls: m.find_gap_calls.load(Ordering::Relaxed),
            probe_points: m.probe_points.load(Ordering::Relaxed),
            writes: m.writes.load(Ordering::Relaxed),
            rows_inserted: m.rows_inserted.load(Ordering::Relaxed),
            rows_deleted: m.rows_deleted.load(Ordering::Relaxed),
            compactions: m.compactions.load(Ordering::Relaxed),
            data_version,
            budget: self.budget.budget() as u64,
            in_flight: in_flight as u64,
            peak_in_flight: peak as u64,
            admitted: self.budget.admitted(),
            waited: self.budget.waited(),
            wal_records: d.wal_records,
            wal_bytes: d.wal_bytes,
            checkpoints: d.checkpoints,
            recoveries: d.recoveries,
            replayed_records: d.replayed_records,
            prepared: m.prepared.load(Ordering::Relaxed),
            exec_hits: m.exec_hits.load(Ordering::Relaxed),
            deadlines: m.deadlines.load(Ordering::Relaxed),
            flushes: m.flushes.load(Ordering::Relaxed),
            // From the engine, not Metrics: the parse counter is bumped
            // inside `Engine::prepare`, so it also counts embedded use —
            // the point is that EXEC never moves it.
            query_parses: self.engine.query_parses(),
        }
    }
}

/// Whole-process service counters. Relaxed atomics: these are monotonic
/// tallies, not synchronization.
#[derive(Default)]
pub(crate) struct Metrics {
    pub(crate) connections: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) rows: AtomicU64,
    pub(crate) disconnects: AtomicU64,
    pub(crate) outputs: AtomicU64,
    pub(crate) find_gap_calls: AtomicU64,
    pub(crate) probe_points: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) rows_inserted: AtomicU64,
    pub(crate) rows_deleted: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) prepared: AtomicU64,
    pub(crate) exec_hits: AtomicU64,
    pub(crate) deadlines: AtomicU64,
    pub(crate) flushes: AtomicU64,
}

impl Metrics {
    /// Folds one completed (or cancelled) response body into the tallies.
    pub(crate) fn absorb(&self, outcome: &BodyOutcome) {
        self.rows.fetch_add(outcome.rows as u64, Ordering::Relaxed);
        self.outputs
            .fetch_add(outcome.stats.outputs, Ordering::Relaxed);
        self.find_gap_calls
            .fetch_add(outcome.stats.find_gap_calls, Ordering::Relaxed);
        self.probe_points
            .fetch_add(outcome.stats.probe_points, Ordering::Relaxed);
    }
}

/// A public snapshot of the server's counters — what `STATS` reports and
/// what the tests assert against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections currently open.
    pub active: u64,
    /// Query requests received (well-formed `Q` lines).
    pub requests: u64,
    /// Requests answered with an `ERR` line (protocol or engine).
    pub errors: u64,
    /// Data rows streamed to clients.
    pub rows: u64,
    /// Bodies cut short by a client disconnect (work was cancelled).
    pub disconnects: u64,
    /// Engine output tuples produced across all requests.
    pub outputs: u64,
    /// Engine `FindGap` calls across all requests (≈ certificate work).
    pub find_gap_calls: u64,
    /// Engine probe points across all requests.
    pub probe_points: u64,
    /// Write requests executed (`W INSERT` / `W DELETE` that reached the
    /// engine, whether or not they changed anything).
    pub writes: u64,
    /// Rows that actually joined a relation (set semantics — duplicate
    /// inserts don't count).
    pub rows_inserted: u64,
    /// Rows that actually left a relation (missing deletes don't count).
    pub rows_deleted: u64,
    /// Write deltas folded into fresh bases by `W COMPACT`.
    pub compactions: u64,
    /// Sum of every relation's version counter — a monotone data-version
    /// clock (equal clocks ⇒ identical logical data).
    pub data_version: u64,
    /// The configured admission budget.
    pub budget: u64,
    /// Worker permits currently held.
    pub in_flight: u64,
    /// High-water mark of held permits (never exceeds `budget`).
    pub peak_in_flight: u64,
    /// Requests admitted through the budget.
    pub admitted: u64,
    /// Requests that queued before admission.
    pub waited: u64,
    /// WAL records appended since open (0 without `--data-dir`).
    pub wal_records: u64,
    /// WAL bytes appended since open.
    pub wal_bytes: u64,
    /// Durability checkpoints committed since open.
    pub checkpoints: u64,
    /// 1 when this process recovered its data directory on boot.
    pub recoveries: u64,
    /// WAL tail records replayed during that recovery.
    pub replayed_records: u64,
    /// `PREPARE` requests that stored a statement.
    pub prepared: u64,
    /// `EXEC` requests served from a connection's prepared-statement map
    /// (whether or not a staleness re-prepare was needed first).
    pub exec_hits: u64,
    /// Query responses terminated by `ERR DEADLINE` — work the server
    /// cancelled itself when a request's deadline passed. Deliberately
    /// *not* counted in `errors`: like a disconnect, a deadline is a
    /// caller-requested cancellation, not a failed request.
    pub deadlines: u64,
    /// Coalesced response-body flushes (socket pushes) across all
    /// sessions. With per-line flushing this would equal body lines;
    /// the gap between the two is the batching win.
    pub flushes: u64,
    /// Query texts parsed by the engine since start (`Q` and `PREPARE`
    /// parse; `EXEC` does not — flat `query_parses` across `EXEC`s is
    /// the prepared-statement fast path working).
    pub query_parses: u64,
}

impl ServerStats {
    /// The counters as `(name, value)` pairs — the `STATS` body, one
    /// `name value` line each, in this order.
    pub fn fields(&self) -> [(&'static str, u64); 29] {
        [
            ("connections", self.connections),
            ("active", self.active),
            ("requests", self.requests),
            ("errors", self.errors),
            ("rows", self.rows),
            ("disconnects", self.disconnects),
            ("outputs", self.outputs),
            ("find_gap_calls", self.find_gap_calls),
            ("probe_points", self.probe_points),
            ("writes", self.writes),
            ("rows_inserted", self.rows_inserted),
            ("rows_deleted", self.rows_deleted),
            ("compactions", self.compactions),
            ("data_version", self.data_version),
            ("budget", self.budget),
            ("in_flight", self.in_flight),
            ("peak_in_flight", self.peak_in_flight),
            ("admitted", self.admitted),
            ("waited", self.waited),
            ("wal_records", self.wal_records),
            ("wal_bytes", self.wal_bytes),
            ("checkpoints", self.checkpoints),
            ("recoveries", self.recoveries),
            ("replayed_records", self.replayed_records),
            ("prepared", self.prepared),
            ("exec_hits", self.exec_hits),
            ("deadlines", self.deadlines),
            ("flushes", self.flushes),
            ("query_parses", self.query_parses),
        ]
    }

    /// Parses a `STATS` response body (the inverse of [`fields`]).
    ///
    /// [`fields`]: ServerStats::fields
    pub fn parse_body(body: &str) -> Option<ServerStats> {
        let mut stats = ServerStats::default();
        for line in body.lines() {
            let (name, value) = line.split_once(' ')?;
            let value: u64 = value.parse().ok()?;
            match name {
                "connections" => stats.connections = value,
                "active" => stats.active = value,
                "requests" => stats.requests = value,
                "errors" => stats.errors = value,
                "rows" => stats.rows = value,
                "disconnects" => stats.disconnects = value,
                "outputs" => stats.outputs = value,
                "find_gap_calls" => stats.find_gap_calls = value,
                "probe_points" => stats.probe_points = value,
                "writes" => stats.writes = value,
                "rows_inserted" => stats.rows_inserted = value,
                "rows_deleted" => stats.rows_deleted = value,
                "compactions" => stats.compactions = value,
                "data_version" => stats.data_version = value,
                "budget" => stats.budget = value,
                "in_flight" => stats.in_flight = value,
                "peak_in_flight" => stats.peak_in_flight = value,
                "admitted" => stats.admitted = value,
                "waited" => stats.waited = value,
                "wal_records" => stats.wal_records = value,
                "wal_bytes" => stats.wal_bytes = value,
                "checkpoints" => stats.checkpoints = value,
                "recoveries" => stats.recoveries = value,
                "replayed_records" => stats.replayed_records = value,
                "prepared" => stats.prepared = value,
                "exec_hits" => stats.exec_hits = value,
                "deadlines" => stats.deadlines = value,
                "flushes" => stats.flushes = value,
                "query_parses" => stats.query_parses = value,
                _ => return None,
            }
        }
        Some(stats)
    }
}

/// A running query service: a bound listener, its accept thread, and the
/// session threads it spawned. Dropping the handle shuts the service
/// down (idempotently; [`Server::shutdown`] does it with error
/// reporting).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 to let the OS pick — the effective
    /// address is [`Server::addr`]) and starts accepting connections
    /// against `engine`, with a global admission budget of `budget`
    /// workers and every other knob at its default.
    pub fn start(engine: Arc<Engine>, addr: &str, budget: usize) -> io::Result<Server> {
        Self::start_with(
            engine,
            addr,
            ServerOptions {
                budget,
                ..ServerOptions::default()
            },
        )
    }

    /// [`Server::start`] with the full configuration surface: admission
    /// budget, server-wide default timeout, and body-flush watermarks.
    pub fn start_with(
        engine: Arc<Engine>,
        addr: &str,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            budget: WorkerBudget::new(options.budget),
            metrics: Metrics::default(),
            options,
            shutdown: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("msj-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The address the service is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the service counters (the same numbers `STATS`
    /// reports over the wire).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops accepting, wakes every session (they poll the shutdown flag
    /// between reads), and joins all service threads.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> io::Result<()> {
        let Some(accept) = self.accept.take() else {
            return Ok(());
        };
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // The accept loop blocks in `accept(2)`; a throwaway self-connect
        // wakes it so it can observe the flag.
        drop(TcpStream::connect(self.addr));
        accept
            .join()
            .map_err(|_| io::Error::other("accept thread panicked"))
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// Accepts connections until shutdown, then joins every session thread
/// (sessions notice the flag within one read-poll interval).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name("msj-session".to_string())
            .spawn(move || session::run(stream, &shared));
        match handle {
            Ok(h) => sessions.push(h),
            Err(_) => continue, // spawn failure: drop the connection
        }
    }
    for h in sessions {
        let _ = h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_body_round_trips() {
        let stats = ServerStats {
            connections: 3,
            active: 1,
            requests: 17,
            errors: 2,
            rows: 420,
            disconnects: 1,
            outputs: 999,
            find_gap_calls: 1234,
            probe_points: 777,
            writes: 21,
            rows_inserted: 13,
            rows_deleted: 6,
            compactions: 2,
            data_version: 19,
            budget: 8,
            in_flight: 2,
            peak_in_flight: 8,
            admitted: 16,
            waited: 5,
            wal_records: 40,
            wal_bytes: 2048,
            checkpoints: 3,
            recoveries: 1,
            replayed_records: 7,
            prepared: 4,
            exec_hits: 29,
            deadlines: 3,
            flushes: 55,
            query_parses: 11,
        };
        let body: String = stats
            .fields()
            .iter()
            .map(|(n, v)| format!("{n} {v}\n"))
            .collect();
        assert_eq!(ServerStats::parse_body(&body), Some(stats));
        assert_eq!(ServerStats::parse_body("nonsense line"), None);
    }

    #[test]
    fn server_starts_and_shuts_down_cleanly() {
        let server = Server::start(Arc::new(Engine::new()), "127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        assert_ne!(addr.port(), 0, "OS assigned a real port");
        assert_eq!(server.stats().budget, 2);
        server.shutdown().unwrap();
    }
}
