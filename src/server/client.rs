//! A small blocking client for the `msj serve` protocol.
//!
//! Shared by the `msj client` CLI mode, the end-to-end tests in
//! `tests/server.rs`, and the `serve_load` generator — one
//! implementation of the framing rules (strip one [`BODY_PREFIX`] per
//! body line, stop at `OK`/`ERR`) instead of three.
//!
//! [`BODY_PREFIX`]: super::protocol::BODY_PREFIX

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use super::protocol::{parse_response_line, ResponseLine};

/// The terminal outcome of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The request succeeded: the reassembled body (prefixes stripped,
    /// byte-identical to the CLI's stdout for a query) and the server's
    /// data-row count.
    Ok {
        /// The response body, newline-terminated lines concatenated.
        body: String,
        /// Data rows the server reported in its `OK` terminator.
        rows: u64,
    },
    /// The request failed: the protocol error code and message.
    Err {
        /// A stable code — `PROTO` or [`crate::engine::EngineError::code`].
        code: String,
        /// The human-readable single-line message.
        message: String,
    },
}

impl Reply {
    /// The body of a successful reply, or `None` for an error.
    pub fn body(&self) -> Option<&str> {
        match self {
            Reply::Ok { body, .. } => Some(body),
            Reply::Err { .. } => None,
        }
    }
}

/// One connection to a running `msj serve`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171` or a bound
    /// [`std::net::SocketAddr`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one raw request line (the newline is added here).
    pub fn send(&mut self, request: &str) -> io::Result<()> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads and classifies the next response line. `UnexpectedEof` when
    /// the server hung up, `InvalidData` when a line violates the
    /// framing.
    pub fn read_line(&mut self) -> io::Result<ResponseLine> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let line = line.trim_end_matches('\n');
        parse_response_line(line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unframed response line: {line:?}"),
            )
        })
    }

    /// Sends one request and collects its whole response.
    pub fn request(&mut self, request: &str) -> io::Result<Reply> {
        self.send(request)?;
        self.read_reply()
    }

    /// Collects body lines until a terminator (for use after [`send`]).
    ///
    /// [`send`]: Client::send
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let mut body = String::new();
        loop {
            match self.read_line()? {
                ResponseLine::Body(line) => {
                    body.push_str(&line);
                    body.push('\n');
                }
                ResponseLine::Ok(rows) => return Ok(Reply::Ok { body, rows }),
                ResponseLine::Err(code, message) => return Ok(Reply::Err { code, message }),
            }
        }
    }

    /// The underlying stream — the tests use this to drop the read side
    /// abruptly (simulating a vanished client) while keeping the handle.
    pub fn stream(&self) -> &TcpStream {
        &self.writer
    }
}
