//! One connection's request/response loop.
//!
//! A session owns its [`TcpStream`] and runs on a dedicated thread: read
//! one request line, act on it, write one framed response, repeat until
//! `QUIT`, EOF, a protocol violation, or server shutdown. Three
//! properties do the heavy lifting:
//!
//! * **Shared hot state** — queries go through the one
//!   [`crate::engine::Engine`] behind the server, so concurrent clients
//!   hit the same plan/re-index cache and concurrent *different* shapes
//!   warm it for each other.
//! * **Admission before execution** — the request's declared worker cost
//!   (see [`crate::engine::DispatchKind::worker_cost`]) is acquired from
//!   the global [`super::WorkerBudget`] *before* the probe loop starts,
//!   so a flood queues instead of oversubscribing the machine.
//! * **Disconnect ⇒ cancellation** — the response body streams through a
//!   per-line-flushed writer; a client that goes away turns the next
//!   write into an error, [`crate::render::write_body`] stops and drops
//!   the tuple stream, and the drop cancels queued and in-flight shard
//!   work. The suffix of the output the client will never read is never
//!   computed.

use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

use crate::render::{write_body, write_explain};

use super::protocol::{
    err_line, ok_line, parse_request, ExplainFormat, Request, WriteAction, BODY_PREFIX, CODE_PROTO,
};
use super::Shared;
use crate::engine::{Engine, EngineError};

/// How often a blocked read wakes up to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Request lines longer than this are a protocol violation (the engine's
/// query grammar never needs more; this bounds a hostile client's
/// memory use).
const MAX_LINE: usize = 1 << 20;

/// Runs one connection to completion. IO errors end the session quietly
/// (the peer is gone; there is nobody left to report them to).
pub(super) fn run(stream: TcpStream, shared: &Shared) {
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    shared.metrics.active.fetch_add(1, Ordering::Relaxed);
    let _ = serve(stream, shared);
    shared.metrics.active.fetch_sub(1, Ordering::Relaxed);
}

fn serve(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // Per-line flushing only helps if the OS sends the line promptly:
    // without NODELAY a small response sits in the Nagle buffer and a
    // disconnect is discovered a round-trip late.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = LineReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    loop {
        let line = match reader.next_line(shared) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()), // EOF or shutdown
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized request: report and hang up — the rest of
                // the line would have to be skipped blind.
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                control(&mut writer, &err_line(CODE_PROTO, &e.to_string()))?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue; // blank lines keep the connection usable interactively
        }
        let request = match parse_request(&line) {
            Ok(r) => r,
            Err(msg) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                control(&mut writer, &err_line(CODE_PROTO, &msg))?;
                continue;
            }
        };
        match request {
            Request::Ping => control(&mut writer, &ok_line(0))?,
            Request::Quit => {
                control(&mut writer, &ok_line(0))?;
                return Ok(());
            }
            Request::Stats => {
                let snapshot = shared.stats();
                let mut body = PrefixWriter::new(&mut writer);
                for (name, value) in snapshot.fields() {
                    writeln!(body, "{name} {value}")?;
                }
                control(&mut writer, &ok_line(0))?;
            }
            Request::Write {
                action,
                relation,
                cells,
            } => match run_write(shared, action, &relation, &cells) {
                Ok(changed) => control(&mut writer, &ok_line(changed))?,
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                }
            },
            Request::Compact { relation } => {
                // Explicit compactions go through the logged path, so a
                // recovered engine repeats them (threshold-triggered ones
                // are content-neutral and re-trigger on their own).
                match shared.engine.compact_logged(relation.as_deref()) {
                    Ok(n) => {
                        shared
                            .metrics
                            .compactions
                            .fetch_add(n as u64, Ordering::Relaxed);
                        control(&mut writer, &ok_line(n))?;
                    }
                    Err(e) => {
                        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                    }
                }
            }
            Request::Checkpoint => match shared.engine.checkpoint() {
                Ok(Some(report)) => control(&mut writer, &ok_line(report.relations))?,
                Ok(None) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(
                        &mut writer,
                        &err_line(
                            "STORAGE",
                            "this server has no data directory (start with --data-dir)",
                        ),
                    )?;
                }
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                }
            },
            Request::Query {
                opts,
                explain,
                text,
            } => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                if !run_query(&mut writer, shared, &opts, explain, &text)? {
                    // The client disconnected mid-body; the stream drop
                    // already cancelled its remaining work.
                    shared.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
    }
}

/// Executes one query request and writes its framed response. Returns
/// `false` when the client disconnected mid-body (session over), `true`
/// otherwise — engine errors become `ERR` lines, not session failures.
fn run_query(
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    opts: &crate::engine::ExecOptions,
    explain: Option<ExplainFormat>,
    text: &str,
) -> io::Result<bool> {
    let stmt = match shared.engine.prepare(text) {
        Ok(stmt) => stmt,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            control(writer, &err_line(e.code(), &e.to_string()))?;
            return Ok(true);
        }
    };

    if let Some(format) = explain {
        let result = {
            let mut body = PrefixWriter::new(writer);
            write_explain(&mut body, &stmt, opts, format == ExplainFormat::Json)
        };
        let connected = match result {
            Ok(connected) => connected,
            Err(e) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                control(writer, &err_line(e.code(), &e.to_string()))?;
                return Ok(true);
            }
        };
        if connected {
            control(writer, &ok_line(0))?;
        }
        return Ok(connected);
    }

    // Admission control: figure out what the request will cost in pool
    // workers and block until the global budget can cover it. Planning
    // (above) is deliberately *not* gated — it is cheap, cached, and
    // needed to know the cost in the first place.
    let kind = match stmt.dispatch_kind(opts) {
        Ok(kind) => kind,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            control(writer, &err_line(e.code(), &e.to_string()))?;
            return Ok(true);
        }
    };
    let permit = shared.budget.acquire(kind.worker_cost());

    let outcome = {
        let mut body = PrefixWriter::new(writer);
        write_body(&mut body, &stmt, opts)
    };
    drop(permit); // the response is produced; free the workers before flushing OK
    match outcome {
        Ok(o) => {
            shared.metrics.absorb(&o);
            if o.disconnected {
                return Ok(false);
            }
            control(writer, &ok_line(o.rows))?;
            Ok(true)
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            control(writer, &err_line(e.code(), &e.to_string()))?;
            Ok(true)
        }
    }
}

/// Executes one `W INSERT` / `W DELETE`: types the text cells against
/// the relation's declared schema (same rules as the TSV loader —
/// integer columns parse, string columns take the token verbatim), then
/// applies the row through the engine's write path. Returns how many
/// rows actually changed membership (0 or 1 — set semantics).
fn run_write(
    shared: &Shared,
    action: WriteAction,
    relation: &str,
    cells: &[String],
) -> Result<usize, EngineError> {
    let engine = &shared.engine;
    let id = engine.db().id_of(relation)?;
    let row = Engine::type_row(relation, engine.schema(id), cells)?;
    let outcome = match action {
        WriteAction::Insert => engine.insert(relation, [row])?,
        WriteAction::Delete => engine.delete(relation, [row])?,
    };
    let m = &shared.metrics;
    m.writes.fetch_add(1, Ordering::Relaxed);
    m.rows_inserted
        .fetch_add(outcome.inserted as u64, Ordering::Relaxed);
    m.rows_deleted
        .fetch_add(outcome.deleted as u64, Ordering::Relaxed);
    // Periodic checkpoint policy: a due checkpoint rides on the write
    // that made it due. A checkpoint failure is logged, not returned —
    // the write itself committed (and is in the WAL).
    if let Err(e) = engine.maybe_checkpoint() {
        eprintln!("msj serve: periodic checkpoint failed: {e}");
    }
    Ok(outcome.affected())
}

/// Writes one control line (`OK …` / `ERR …`) and flushes it out.
fn control(writer: &mut BufWriter<TcpStream>, line: &str) -> io::Result<()> {
    writeln!(writer, "{line}")?;
    writer.flush()
}

/// A newline reader over a non-blocking-ish socket: read timeouts are
/// polling opportunities for the shutdown flag, so idle connections
/// cannot hold up server shutdown.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            pending: Vec::new(),
        }
    }

    /// The next request line (without its newline), `None` on EOF or
    /// server shutdown, `InvalidData` when a line exceeds [`MAX_LINE`].
    fn next_line(&mut self, shared: &Shared) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.pending.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("request line exceeds {MAX_LINE} bytes"),
                ));
            }
            if shared.shutting_down() {
                return Ok(None);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Frames a response body: inserts [`BODY_PREFIX`] at the start of every
/// line and flushes at every line end, so the peer sees tuples as they
/// are certified and a gone peer turns the next line into an error (the
/// cancellation trigger).
struct PrefixWriter<'w, W: Write> {
    inner: &'w mut W,
    at_line_start: bool,
}

impl<'w, W: Write> PrefixWriter<'w, W> {
    fn new(inner: &'w mut W) -> Self {
        PrefixWriter {
            inner,
            at_line_start: true,
        }
    }
}

impl<W: Write> Write for PrefixWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut rest = buf;
        while !rest.is_empty() {
            if self.at_line_start {
                let mut prefix = [0u8; 4];
                self.inner
                    .write_all(BODY_PREFIX.encode_utf8(&mut prefix).as_bytes())?;
                self.at_line_start = false;
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    self.inner.write_all(&rest[..=pos])?;
                    self.inner.flush()?;
                    self.at_line_start = true;
                    rest = &rest[pos + 1..];
                }
                None => {
                    self.inner.write_all(rest)?;
                    rest = &[];
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_writer_frames_each_line_once() {
        let mut out = Vec::new();
        {
            let mut w = PrefixWriter::new(&mut out);
            // Multiple write calls per line, multiple lines per call —
            // exactly one prefix per physical line either way.
            write!(w, "# a").unwrap();
            writeln!(w, "\tb").unwrap();
            write!(w, "1\t2\nthree").unwrap();
            writeln!(w, "\tfour").unwrap();
        }
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "|# a\tb\n|1\t2\n|three\tfour\n"
        );
    }

    #[test]
    fn prefix_writer_leaves_empty_lines_framed() {
        let mut out = Vec::new();
        {
            let mut w = PrefixWriter::new(&mut out);
            writeln!(w).unwrap();
            writeln!(w, "x").unwrap();
        }
        assert_eq!(String::from_utf8(out).unwrap(), "|\n|x\n");
    }
}
