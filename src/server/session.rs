//! One connection's request/response loop.
//!
//! A session owns its [`TcpStream`] and runs on a dedicated thread: read
//! one request line, act on it, write one framed response, repeat until
//! `QUIT`, EOF, a protocol violation, or server shutdown. Four
//! properties do the heavy lifting:
//!
//! * **Shared hot state** — queries go through the one
//!   [`crate::engine::Engine`] behind the server, so concurrent clients
//!   hit the same plan/re-index cache and concurrent *different* shapes
//!   warm it for each other. On top of that, `PREPARE` pins a planned
//!   [`PreparedStatement`] on the connection so `EXEC` skips request
//!   parsing and planning entirely (a write that bumps a relation
//!   version re-plans transparently from the stored text).
//! * **Admission before execution** — the request's declared worker cost
//!   (see [`crate::engine::DispatchKind::worker_cost`]) is acquired from
//!   the global [`super::WorkerBudget`] *before* the probe loop starts,
//!   so a flood queues instead of oversubscribing the machine.
//! * **Disconnect ⇒ cancellation** — the response body streams through a
//!   coalescing writer; a client that goes away turns a later write or
//!   flush into an error, [`crate::render::write_body`] stops and drops
//!   the tuple stream, and the drop cancels queued and in-flight shard
//!   work. The suffix of the output the client will never read is never
//!   computed.
//! * **Deadline ⇒ cancellation** — a `timeout=` option (or the server's
//!   `--default-timeout`) arms [`crate::engine::ExecOptions::deadline`]
//!   when execution starts; an expired stream stops yielding
//!   *server-side*, the partial body already flushed stays valid, and
//!   the response terminates with `ERR DEADLINE <elapsed>` instead of
//!   `OK` — no disconnect required.
//!
//! Response batching: body lines are flushed on watermarks (every
//! [`super::ServerOptions::flush_rows`] complete lines or
//! [`super::ServerOptions::flush_bytes`] bytes, whichever trips first)
//! instead of per line, so a large body amortizes syscalls. The first
//! completed line always flushes immediately, keeping `limit=k`
//! first-row latency at one flush; the residual tail rides the control
//! line's flush.

use std::collections::HashMap;
use std::io::{self, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::render::{write_body, write_explain};

use super::protocol::{
    err_line, ok_line, parse_request, ExplainFormat, Request, WriteAction, BODY_PREFIX, CODE_PROTO,
};
use super::Shared;
use crate::engine::{Engine, EngineError, ExecOptions, PreparedStatement};

/// How often a blocked read wakes up to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Request lines longer than this are a protocol violation (the engine's
/// query grammar never needs more; this bounds a hostile client's
/// memory use).
const MAX_LINE: usize = 1 << 20;

/// One `PREPARE`d statement pinned on a connection: the planned
/// statement plus everything needed to re-plan it when a write makes it
/// stale and to seed each `EXEC` with its declared defaults.
struct PreparedEntry {
    /// The original query text (re-prepared from verbatim on staleness).
    text: String,
    /// Default execution options from the `PREPARE` line.
    opts: ExecOptions,
    /// Default `timeout=` budget from the `PREPARE` line.
    timeout: Option<Duration>,
    /// The planned statement, bound to a database snapshot.
    stmt: PreparedStatement,
}

/// Runs one connection to completion. IO errors end the session quietly
/// (the peer is gone; there is nobody left to report them to).
pub(super) fn run(stream: TcpStream, shared: &Shared) {
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    shared.metrics.active.fetch_add(1, Ordering::Relaxed);
    let _ = serve(stream, shared);
    shared.metrics.active.fetch_sub(1, Ordering::Relaxed);
}

fn serve(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    // Watermark flushing only helps if the OS sends the batch promptly:
    // without NODELAY a small response sits in the Nagle buffer and a
    // disconnect is discovered a round-trip late.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = LineReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Prepared statements are per-connection: no cross-client name
    // clashes, and dropping the connection drops the map.
    let mut prepared: HashMap<String, PreparedEntry> = HashMap::new();

    loop {
        let line = match reader.next_line(shared) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()), // EOF or shutdown
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized request: report and hang up — the rest of
                // the line would have to be skipped blind.
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                control(&mut writer, &err_line(CODE_PROTO, &e.to_string()))?;
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue; // blank lines keep the connection usable interactively
        }
        let request = match parse_request(&line) {
            Ok(r) => r,
            Err(msg) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                control(&mut writer, &err_line(CODE_PROTO, &msg))?;
                continue;
            }
        };
        match request {
            Request::Ping => control(&mut writer, &ok_line(0))?,
            Request::Quit => {
                control(&mut writer, &ok_line(0))?;
                return Ok(());
            }
            Request::Stats => {
                let snapshot = shared.stats();
                let mut body = PrefixWriter::new(&mut writer);
                for (name, value) in snapshot.fields() {
                    writeln!(body, "{name} {value}")?;
                }
                control(&mut writer, &ok_line(0))?;
            }
            Request::Write {
                action,
                relation,
                cells,
            } => match run_write(shared, action, &relation, &cells) {
                Ok(changed) => control(&mut writer, &ok_line(changed))?,
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                }
            },
            Request::Compact { relation } => {
                // Explicit compactions go through the logged path, so a
                // recovered engine repeats them (threshold-triggered ones
                // are content-neutral and re-trigger on their own).
                match shared.engine.compact_logged(relation.as_deref()) {
                    Ok(n) => {
                        shared
                            .metrics
                            .compactions
                            .fetch_add(n as u64, Ordering::Relaxed);
                        control(&mut writer, &ok_line(n))?;
                    }
                    Err(e) => {
                        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                    }
                }
            }
            Request::Checkpoint => match shared.engine.checkpoint() {
                Ok(Some(report)) => control(&mut writer, &ok_line(report.relations))?,
                Ok(None) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(
                        &mut writer,
                        &err_line(
                            "STORAGE",
                            "this server has no data directory (start with --data-dir)",
                        ),
                    )?;
                }
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                }
            },
            Request::Query {
                opts,
                timeout,
                explain,
                text,
            } => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                if !run_query(&mut writer, shared, &opts, timeout, explain, &text)? {
                    // The client disconnected mid-body; the stream drop
                    // already cancelled its remaining work.
                    shared.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
            Request::Prepare {
                name,
                opts,
                timeout,
                text,
            } => match shared.engine.prepare(&text) {
                Ok(stmt) => {
                    shared.metrics.prepared.fetch_add(1, Ordering::Relaxed);
                    prepared.insert(
                        name,
                        PreparedEntry {
                            text,
                            opts,
                            timeout,
                            stmt,
                        },
                    );
                    control(&mut writer, &ok_line(0))?;
                }
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                }
            },
            Request::Exec { name, overrides } => {
                shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let Some(entry) = prepared.get_mut(&name) else {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    control(
                        &mut writer,
                        &err_line(
                            CODE_PROTO,
                            &format!(
                                "no prepared statement {name:?} on this connection (PREPARE it \
                                 first)"
                            ),
                        ),
                    )?;
                    continue;
                };
                // A write since PREPARE bumped some base relation's
                // version; re-plan from the stored text so EXEC never
                // serves a stale snapshot. The re-prepare counts as a
                // parse (it is one) — steady-state EXECs on a read-only
                // workload keep `query_parses` flat.
                if !entry.stmt.is_current(&shared.engine.db()) {
                    match shared.engine.prepare(&entry.text) {
                        Ok(stmt) => entry.stmt = stmt,
                        Err(e) => {
                            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                            control(&mut writer, &err_line(e.code(), &e.to_string()))?;
                            continue;
                        }
                    }
                }
                shared.metrics.exec_hits.fetch_add(1, Ordering::Relaxed);
                let mut opts = entry.opts.clone();
                if let Some(limit) = overrides.limit {
                    opts.limit = Some(limit);
                }
                if let Some(threads) = overrides.threads {
                    opts.threads = threads;
                }
                let timeout = overrides.timeout.or(entry.timeout);
                if !execute_statement(&mut writer, shared, &entry.stmt, &opts, timeout)? {
                    shared.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
            Request::Unprepare { name } => {
                let removed = usize::from(prepared.remove(&name).is_some());
                control(&mut writer, &ok_line(removed))?;
            }
        }
    }
}

/// Executes one `Q` request and writes its framed response. Returns
/// `false` when the client disconnected mid-body (session over), `true`
/// otherwise — engine errors become `ERR` lines, not session failures.
fn run_query(
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    opts: &ExecOptions,
    timeout: Option<Duration>,
    explain: Option<ExplainFormat>,
    text: &str,
) -> io::Result<bool> {
    let stmt = match shared.engine.prepare(text) {
        Ok(stmt) => stmt,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            control(writer, &err_line(e.code(), &e.to_string()))?;
            return Ok(true);
        }
    };

    if let Some(format) = explain {
        let result = {
            let mut body = PrefixWriter::new(writer);
            write_explain(&mut body, &stmt, opts, format == ExplainFormat::Json)
        };
        let connected = match result {
            Ok(connected) => connected,
            Err(e) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                control(writer, &err_line(e.code(), &e.to_string()))?;
                return Ok(true);
            }
        };
        if connected {
            control(writer, &ok_line(0))?;
        }
        return Ok(connected);
    }

    execute_statement(writer, shared, &stmt, opts, timeout)
}

/// Runs one planned statement — the shared tail of `Q` and `EXEC`: arm
/// the deadline, pass admission control, stream the body through the
/// coalescing writer, terminate with `OK`, `ERR DEADLINE`, or a plain
/// `ERR`. Returns `false` when the client disconnected mid-body.
fn execute_statement(
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    stmt: &PreparedStatement,
    opts: &ExecOptions,
    timeout: Option<Duration>,
) -> io::Result<bool> {
    // The clock arms when execution starts, not at parse or queue time;
    // the per-request budget falls back to the server-wide default.
    let started = Instant::now();
    let timeout = timeout.or(shared.options.default_timeout);
    let mut opts = opts.clone();
    opts.deadline = timeout.map(|budget| started + budget);

    // Admission control: figure out what the request will cost in pool
    // workers and block until the global budget can cover it. Planning
    // is deliberately *not* gated — it is cheap, cached, and needed to
    // know the cost in the first place.
    let kind = match stmt.dispatch_kind(&opts) {
        Ok(kind) => kind,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            control(writer, &err_line(e.code(), &e.to_string()))?;
            return Ok(true);
        }
    };
    let permit = shared.budget.acquire(kind.worker_cost());

    let outcome = {
        let mut body = PrefixWriter::coalescing(
            writer,
            shared.options.flush_rows,
            shared.options.flush_bytes,
            &shared.metrics.flushes,
        );
        write_body(&mut body, stmt, &opts)
    };
    drop(permit); // the response is produced; free the workers before flushing OK
    match outcome {
        Ok(o) => {
            shared.metrics.absorb(&o);
            if o.disconnected {
                return Ok(false);
            }
            if o.deadline_exceeded {
                deadline_err(writer, shared, started)?;
                return Ok(true);
            }
            control(writer, &ok_line(o.rows))?;
            Ok(true)
        }
        // A materializing path hit the deadline before producing any
        // body byte: same terminator, same counter.
        Err(EngineError::DeadlineExceeded) => {
            deadline_err(writer, shared, started)?;
            Ok(true)
        }
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            control(writer, &err_line(e.code(), &e.to_string()))?;
            Ok(true)
        }
    }
}

/// Terminates an expired response: bumps `deadlines` (deliberately not
/// `errors` — a deadline is a caller-requested cancellation, not a
/// fault) and writes the stable `ERR DEADLINE <elapsed>` control line.
fn deadline_err(
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    started: Instant,
) -> io::Result<()> {
    shared.metrics.deadlines.fetch_add(1, Ordering::Relaxed);
    control(
        writer,
        &err_line(
            EngineError::DeadlineExceeded.code(),
            &format!(
                "deadline exceeded after {}ms",
                started.elapsed().as_millis()
            ),
        ),
    )
}

/// Executes one `W INSERT` / `W DELETE`: types the text cells against
/// the relation's declared schema (same rules as the TSV loader —
/// integer columns parse, string columns take the token verbatim), then
/// applies the row through the engine's write path. Returns how many
/// rows actually changed membership (0 or 1 — set semantics).
fn run_write(
    shared: &Shared,
    action: WriteAction,
    relation: &str,
    cells: &[String],
) -> Result<usize, EngineError> {
    let engine = &shared.engine;
    let id = engine.db().id_of(relation)?;
    let row = Engine::type_row(relation, engine.schema(id), cells)?;
    let outcome = match action {
        WriteAction::Insert => engine.insert(relation, [row])?,
        WriteAction::Delete => engine.delete(relation, [row])?,
    };
    let m = &shared.metrics;
    m.writes.fetch_add(1, Ordering::Relaxed);
    m.rows_inserted
        .fetch_add(outcome.inserted as u64, Ordering::Relaxed);
    m.rows_deleted
        .fetch_add(outcome.deleted as u64, Ordering::Relaxed);
    // Periodic checkpoint policy: a due checkpoint rides on the write
    // that made it due. A checkpoint failure is logged, not returned —
    // the write itself committed (and is in the WAL).
    if let Err(e) = engine.maybe_checkpoint() {
        eprintln!("msj serve: periodic checkpoint failed: {e}");
    }
    Ok(outcome.affected())
}

/// Writes one control line (`OK …` / `ERR …`) and flushes it out — along
/// with any body tail the coalescing writer left below its watermarks.
fn control(writer: &mut BufWriter<TcpStream>, line: &str) -> io::Result<()> {
    writeln!(writer, "{line}")?;
    writer.flush()
}

/// A newline reader over a non-blocking-ish socket: read timeouts are
/// polling opportunities for the shutdown flag, so idle connections
/// cannot hold up server shutdown.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        LineReader {
            stream,
            pending: Vec::new(),
        }
    }

    /// The next request line (without its newline), `None` on EOF or
    /// server shutdown, `InvalidData` when a line exceeds [`MAX_LINE`].
    fn next_line(&mut self, shared: &Shared) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.pending.len() > MAX_LINE {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("request line exceeds {MAX_LINE} bytes"),
                ));
            }
            if shared.shutting_down() {
                return Ok(None);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Frames a response body — [`BODY_PREFIX`] at the start of every line —
/// and coalesces flushes behind watermarks so large bodies amortize
/// syscalls instead of paying one `write`+flush per tuple.
///
/// Flush policy: the **first** completed line always flushes (first-row
/// latency under `limit=k` stays one flush, and a gone peer is noticed
/// at the head of the stream); after that, a flush fires whenever
/// `flush_rows` complete lines or `flush_bytes` bytes have accumulated
/// since the previous one. The residual below the watermarks is *not*
/// flushed here — it rides the control line's flush in [`control`],
/// which is also why the deterministic per-body flush count is
/// `1 + ⌊(lines−1)/flush_rows⌋` when the byte watermark never trips.
/// Each watermark flush is counted into the server's `flushes` metric.
struct PrefixWriter<'w, W: Write> {
    inner: &'w mut W,
    at_line_start: bool,
    /// Complete lines accumulated since the last flush.
    pending_lines: usize,
    /// Bytes (prefixes included) accumulated since the last flush.
    pending_bytes: usize,
    /// Complete lines over the writer's whole life (first-line flush).
    total_lines: usize,
    /// Line-count watermark (≥ 1).
    flush_rows: usize,
    /// Byte-count watermark.
    flush_bytes: usize,
    /// Server-wide flush counter, when this body's flushes are metered.
    flushes: Option<&'w AtomicU64>,
}

impl<'w, W: Write> PrefixWriter<'w, W> {
    /// A per-line-flushing writer for small fixed bodies (`STATS`,
    /// `explain`) where coalescing buys nothing.
    fn new(inner: &'w mut W) -> Self {
        PrefixWriter {
            inner,
            at_line_start: true,
            pending_lines: 0,
            pending_bytes: 0,
            total_lines: 0,
            flush_rows: 1,
            flush_bytes: usize::MAX,
            flushes: None,
        }
    }

    /// A watermark-flushing writer for query bodies; every flush it
    /// performs is counted into `flushes`.
    fn coalescing(
        inner: &'w mut W,
        flush_rows: usize,
        flush_bytes: usize,
        flushes: &'w AtomicU64,
    ) -> Self {
        PrefixWriter {
            inner,
            at_line_start: true,
            pending_lines: 0,
            pending_bytes: 0,
            total_lines: 0,
            flush_rows: flush_rows.max(1),
            flush_bytes,
            flushes: Some(flushes),
        }
    }

    fn flush_pending(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        if let Some(counter) = self.flushes {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        self.pending_lines = 0;
        self.pending_bytes = 0;
        Ok(())
    }
}

impl<W: Write> Write for PrefixWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut rest = buf;
        while !rest.is_empty() {
            if self.at_line_start {
                let mut prefix = [0u8; 4];
                let encoded = BODY_PREFIX.encode_utf8(&mut prefix).as_bytes();
                self.inner.write_all(encoded)?;
                self.pending_bytes += encoded.len();
                self.at_line_start = false;
            }
            match rest.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    self.inner.write_all(&rest[..=pos])?;
                    self.pending_bytes += pos + 1;
                    self.pending_lines += 1;
                    self.total_lines += 1;
                    self.at_line_start = true;
                    if self.total_lines == 1
                        || self.pending_lines >= self.flush_rows
                        || self.pending_bytes >= self.flush_bytes
                    {
                        self.flush_pending()?;
                    }
                    rest = &rest[pos + 1..];
                }
                None => {
                    self.inner.write_all(rest)?;
                    self.pending_bytes += rest.len();
                    rest = &[];
                }
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_writer_frames_each_line_once() {
        let mut out = Vec::new();
        {
            let mut w = PrefixWriter::new(&mut out);
            // Multiple write calls per line, multiple lines per call —
            // exactly one prefix per physical line either way.
            write!(w, "# a").unwrap();
            writeln!(w, "\tb").unwrap();
            write!(w, "1\t2\nthree").unwrap();
            writeln!(w, "\tfour").unwrap();
        }
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "|# a\tb\n|1\t2\n|three\tfour\n"
        );
    }

    #[test]
    fn prefix_writer_leaves_empty_lines_framed() {
        let mut out = Vec::new();
        {
            let mut w = PrefixWriter::new(&mut out);
            writeln!(w).unwrap();
            writeln!(w, "x").unwrap();
        }
        assert_eq!(String::from_utf8(out).unwrap(), "|\n|x\n");
    }

    #[test]
    fn coalescing_writer_flushes_on_the_row_watermark() {
        let flushes = AtomicU64::new(0);
        let mut out = Vec::new();
        {
            let mut w = PrefixWriter::coalescing(&mut out, 4, usize::MAX, &flushes);
            for i in 0..10 {
                writeln!(w, "row {i}").unwrap();
            }
        }
        // Line 1 flushes immediately; lines 2–5 and 6–9 each fill the
        // 4-line watermark; line 10 stays pending for the control line:
        // 1 + ⌊(10−1)/4⌋ = 3.
        assert_eq!(flushes.load(Ordering::Relaxed), 3);
        // Framing is unchanged by coalescing.
        assert!(String::from_utf8(out)
            .unwrap()
            .starts_with("|row 0\n|row 1\n"));
    }

    #[test]
    fn coalescing_writer_flushes_on_the_byte_watermark() {
        let flushes = AtomicU64::new(0);
        let mut out = Vec::new();
        {
            // 16-byte watermark: "|xxxxxxxx\n" is 10 bytes, so every
            // second line trips it (first line flushes unconditionally).
            let mut w = PrefixWriter::coalescing(&mut out, usize::MAX, 16, &flushes);
            for _ in 0..6 {
                writeln!(w, "xxxxxxxx").unwrap();
            }
        }
        // Flush after line 1 (first line), then after lines 3 and 5
        // (two pending lines = 20 bytes ≥ 16); line 6 stays pending.
        assert_eq!(flushes.load(Ordering::Relaxed), 3);
    }
}
