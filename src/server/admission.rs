//! Admission control: a bounded global worker budget.
//!
//! Every query a connection runs occupies pool workers — one for a
//! serial or baseline execution, `t` for a parallel one (see
//! [`crate::engine::DispatchKind::worker_cost`]). Without a bound, a
//! flood of `threads=8` requests would oversubscribe the machine: each
//! request spawns its own shard workers, so 50 concurrent clients could
//! stand up 400 probe threads fighting for the same cores. The
//! [`WorkerBudget`] is a counting semaphore over that sum: a request
//! **acquires** its worker cost before executing and releases it when
//! its response (or cancellation) completes, so excess requests *queue*
//! instead of oversubscribing — throughput degrades gracefully under
//! flood, and the peak number of in-flight workers is bounded by
//! construction.
//!
//! The budget is deliberately engine-agnostic: it counts *declared*
//! worker cost, not threads the OS happens to schedule, which makes the
//! accounting deterministic and testable (the saturation test asserts
//! `peak ≤ budget` from these counters).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Counters behind the budget's mutex: the live permit count and the
/// high-water mark.
#[derive(Debug, Default)]
struct State {
    in_flight: usize,
    peak: usize,
}

/// A counting semaphore over pool-worker permits (see the module docs).
#[derive(Debug)]
pub struct WorkerBudget {
    budget: usize,
    state: Mutex<State>,
    freed: Condvar,
    admitted: AtomicU64,
    waited: AtomicU64,
}

impl WorkerBudget {
    /// A budget of `budget` concurrent workers (clamped to at least 1 —
    /// a zero budget would admit nothing, ever).
    pub fn new(budget: usize) -> Self {
        WorkerBudget {
            budget: budget.max(1),
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            waited: AtomicU64::new(0),
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Blocks until `cost` workers are available, then debits them.
    /// A cost above the whole budget is clamped to it — such a request
    /// runs alone rather than deadlocking — and a cost of zero still
    /// debits one worker (every admitted request occupies at least the
    /// connection's own execution). The permit credits the budget back
    /// on drop.
    pub fn acquire(&self, cost: usize) -> Permit<'_> {
        let cost = cost.clamp(1, self.budget);
        let mut state = self.state.lock().unwrap();
        if state.in_flight + cost > self.budget {
            self.waited.fetch_add(1, Ordering::Relaxed);
            while state.in_flight + cost > self.budget {
                state = self.freed.wait(state).unwrap();
            }
        }
        state.in_flight += cost;
        state.peak = state.peak.max(state.in_flight);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Permit { budget: self, cost }
    }

    /// The live accounting: `(in_flight, peak)`.
    pub fn in_flight_and_peak(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.in_flight, state.peak)
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests that had to queue before being admitted.
    pub fn waited(&self) -> u64 {
        self.waited.load(Ordering::Relaxed)
    }

    fn release(&self, cost: usize) {
        let mut state = self.state.lock().unwrap();
        debug_assert!(state.in_flight >= cost, "release without acquire");
        state.in_flight -= cost;
        drop(state);
        // Several queued requests with small costs may now fit at once.
        self.freed.notify_all();
    }
}

/// A held admission: `cost` workers debited from the budget, credited
/// back on drop (including on panic — the session thread unwinding must
/// not leak budget).
#[derive(Debug)]
pub struct Permit<'b> {
    budget: &'b WorkerBudget,
    cost: usize,
}

impl Permit<'_> {
    /// The worker cost this permit holds.
    pub fn cost(&self) -> usize {
        self.cost
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.budget.release(self.cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn acquire_release_accounting() {
        let b = WorkerBudget::new(4);
        assert_eq!(b.budget(), 4);
        let p1 = b.acquire(3);
        assert_eq!(p1.cost(), 3);
        assert_eq!(b.in_flight_and_peak(), (3, 3));
        let p2 = b.acquire(1);
        assert_eq!(b.in_flight_and_peak(), (4, 4));
        drop(p1);
        assert_eq!(b.in_flight_and_peak(), (1, 4), "peak is sticky");
        drop(p2);
        assert_eq!(b.in_flight_and_peak(), (0, 4));
        assert_eq!(b.admitted(), 2);
        assert_eq!(b.waited(), 0, "nothing queued");
    }

    #[test]
    fn oversized_and_zero_costs_are_clamped() {
        let b = WorkerBudget::new(2);
        let p = b.acquire(100);
        assert_eq!(p.cost(), 2, "clamped to the whole budget");
        drop(p);
        let p = b.acquire(0);
        assert_eq!(p.cost(), 1, "every request occupies at least one");
    }

    #[test]
    fn saturation_queues_and_bounds_peak() {
        let b = Arc::new(WorkerBudget::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            let running = Arc::clone(&running);
            handles.push(std::thread::spawn(move || {
                let _p = b.acquire(2);
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 1, "cost-2 permits on budget 2 are exclusive");
                std::thread::sleep(std::time::Duration::from_millis(2));
                running.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (in_flight, peak) = b.in_flight_and_peak();
        assert_eq!(in_flight, 0);
        assert!(peak <= 2, "peak {peak} must respect the budget");
        assert_eq!(b.admitted(), 8, "every request eventually admitted");
        assert!(b.waited() >= 1, "saturation forced queueing");
    }
}
