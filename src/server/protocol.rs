//! The `msj serve` line protocol: requests, framing, error codes.
//!
//! Everything is newline-delimited UTF-8 over TCP — std-only, trivially
//! scriptable (`nc` works), and friendly to the streaming contract: one
//! request line in, a framed response out, repeat on the same
//! connection. The full grammar lives in `docs/SERVICE.md`; in short:
//!
//! ```text
//! request  := "Q" { SP option } [ SP "--" ] SP query-text
//!           | "PREPARE" SP name { SP option } [ SP "--" ] SP query-text
//!           | "EXEC" SP name { SP override }
//!           | "UNPREPARE" SP name
//!           | "W" SP ("INSERT" | "DELETE") SP relation { SP cell }
//!           | "W" SP "COMPACT" [ SP relation ]
//!           | "W" SP "CHECKPOINT"
//!           | "PING" | "STATS" | "QUIT"
//! option   := "algo=" NAME | "threads=" N | "limit=" K
//!           | "timeout=" MS | "explain" | "explain=json"
//! override := "limit=" K | "timeout=" MS | "threads=" N
//! ```
//!
//! `PREPARE` parses and plans a query once and stores it under `name`
//! on this connection; `EXEC name` runs it — skipping request parsing,
//! query parsing, and plan lookup — with optional per-execution
//! overrides; `UNPREPARE` drops it. `timeout=MS` arms a per-request
//! deadline: when it passes mid-stream the server cancels the remaining
//! work and terminates the response with `ERR DEADLINE` (partial body
//! lines may precede it — the one `ERR` that can follow body lines).
//!
//! A `W INSERT` / `W DELETE` carries one row of whitespace-separated
//! cells, typed by the relation's declared schema exactly like the TSV
//! loader (integer columns parse, string columns take the token
//! verbatim); the `OK <n>` terminator reports how many rows actually
//! changed membership (set semantics — 0 for a duplicate insert or a
//! missing delete). `W COMPACT` folds pending write deltas into fresh
//! immutable bases and reports how many relations were folded.
//! `W CHECKPOINT` forces a durability checkpoint (`OK <relations>`) on a
//! server running with `--data-dir`; without one it is a `STORAGE`
//! error — see `docs/DURABILITY.md`.
//!
//! A query response is the CLI's stdout **body** (see
//! [`crate::render`]), each line prefixed with `|`, terminated by one
//! `OK <rows>` control line; failures are a single `ERR <code>
//! <message>` line whose code comes from
//! [`crate::engine::EngineError::code`] (plus [`CODE_PROTO`] for
//! request-level violations). The prefix makes the framing
//! self-describing — a client strips one leading `|` per body line and
//! recovers the CLI's bytes exactly, and no tuple content can ever be
//! mistaken for a control line.

use std::time::Duration;

use crate::engine::ExecOptions;

/// Error code for malformed request lines (the engine never sees them).
pub const CODE_PROTO: &str = "PROTO";

/// The one-character prefix every response body line carries.
pub const BODY_PREFIX: char = '|';

/// How an `explain` option wants the plan rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainFormat {
    /// The human-readable multi-line rendering (`--explain`).
    Human,
    /// The structured single-line JSON form (`--explain-json`).
    Json,
}

/// Which membership change a `W` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteAction {
    /// Add the row (no-op if already present).
    Insert,
    /// Remove the row (no-op if absent).
    Delete,
}

/// Per-execution overrides an `EXEC` line may carry on top of the
/// options its statement was `PREPARE`d with. `None` everywhere means
/// "run exactly as prepared".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOverrides {
    /// Overriding `limit=` row cap.
    pub limit: Option<usize>,
    /// Overriding `timeout=` deadline.
    pub timeout: Option<Duration>,
    /// Overriding `threads=` worker count.
    pub threads: Option<usize>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute (or explain) a query with per-request options.
    Query {
        /// Engine options the option tokens mapped onto.
        opts: ExecOptions,
        /// Per-request deadline budget from `timeout=` (the session arms
        /// the clock when execution starts, not at parse time).
        timeout: Option<Duration>,
        /// `Some` when the request asks for the plan instead of rows.
        explain: Option<ExplainFormat>,
        /// The query text (everything after the options).
        text: String,
    },
    /// Parse and plan a query once, storing it on this connection under
    /// a name for later `EXEC`s; response `OK 0`.
    Prepare {
        /// The statement's name on this connection.
        name: String,
        /// Default engine options executions start from.
        opts: ExecOptions,
        /// Default `timeout=` budget for executions.
        timeout: Option<Duration>,
        /// The query text (kept so a stale statement can re-prepare).
        text: String,
    },
    /// Execute a statement this connection `PREPARE`d, with optional
    /// per-execution overrides; response is a normal query response.
    Exec {
        /// The statement to run.
        name: String,
        /// Per-execution option overrides.
        overrides: ExecOverrides,
    },
    /// Drop a prepared statement; response `OK 1` (dropped) or `OK 0`
    /// (no such name).
    Unprepare {
        /// The statement to drop.
        name: String,
    },
    /// Insert or delete one row of a stored relation; response
    /// `OK <changed>`.
    Write {
        /// Insert or delete.
        action: WriteAction,
        /// The target relation's name.
        relation: String,
        /// The row's cells, still text — the session types them against
        /// the relation's declared schema.
        cells: Vec<String>,
    },
    /// Fold pending write deltas into fresh bases (one relation, or all
    /// of them); response `OK <folded>`.
    Compact {
        /// `None` compacts every relation with pending writes.
        relation: Option<String>,
    },
    /// Force a durability checkpoint; response `OK <relations dumped>`
    /// (requires a `--data-dir` server).
    Checkpoint,
    /// Liveness probe; response `OK 0`.
    Ping,
    /// Server counters as a body of `name value` lines.
    Stats,
    /// Close the connection (after an `OK 0` acknowledgement).
    Quit,
}

/// Parses one request line (already stripped of its newline). Errors are
/// the human message for an `ERR PROTO` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim_end_matches('\r');
    let trimmed = line.trim_start();
    let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r),
        None => (trimmed, ""),
    };
    match verb {
        "PING" => expect_no_operand("PING", rest).map(|()| Request::Ping),
        "STATS" => expect_no_operand("STATS", rest).map(|()| Request::Stats),
        "QUIT" => expect_no_operand("QUIT", rest).map(|()| Request::Quit),
        "Q" => parse_query_request(rest),
        "PREPARE" => parse_prepare_request(rest),
        "EXEC" => parse_exec_request(rest),
        "UNPREPARE" => {
            let name = rest.trim();
            if name.is_empty() || name.split_whitespace().nth(1).is_some() {
                return Err("UNPREPARE takes exactly one statement name".to_string());
            }
            check_statement_name(name)?;
            Ok(Request::Unprepare {
                name: name.to_string(),
            })
        }
        "W" => parse_write_request(rest),
        "" => Err("empty request".to_string()),
        other => Err(format!(
            "unknown verb {other:?} (expected Q, PREPARE, EXEC, UNPREPARE, W, PING, STATS, or \
             QUIT)"
        )),
    }
}

fn expect_no_operand(verb: &str, rest: &str) -> Result<(), String> {
    if rest.trim().is_empty() {
        Ok(())
    } else {
        Err(format!("{verb} takes no operand"))
    }
}

/// Everything the shared option-token scanner extracts from a `Q` or
/// `PREPARE` operand.
struct QuerySpec {
    opts: ExecOptions,
    timeout: Option<Duration>,
    explain: Option<ExplainFormat>,
    text: String,
}

/// Parses the operand of a `Q` line: leading `key=value` / `explain`
/// option tokens, an optional `--` separator, then the query text
/// verbatim. The first token that is not a recognized option starts the
/// query, so relation names never collide with option syntax unless
/// they *are* option syntax — in which case `--` disambiguates.
fn parse_query_request(rest: &str) -> Result<Request, String> {
    let spec = parse_query_spec("Q", rest)?;
    Ok(Request::Query {
        opts: spec.opts,
        timeout: spec.timeout,
        explain: spec.explain,
        text: spec.text,
    })
}

/// Parses the operand of a `PREPARE` line: a statement name, then the
/// same option/query grammar as `Q` (minus `explain` — a prepared
/// statement is for executing).
fn parse_prepare_request(rest: &str) -> Result<Request, String> {
    let rest = rest.trim_start();
    let Some((name, spec_rest)) = rest.split_once(char::is_whitespace) else {
        return Err("PREPARE needs a name and a query, e.g. PREPARE hot -- R(a,b)".to_string());
    };
    check_statement_name(name)?;
    let spec = parse_query_spec("PREPARE", spec_rest)?;
    if spec.explain.is_some() {
        return Err("PREPARE does not take explain (EXEC runs the statement)".to_string());
    }
    Ok(Request::Prepare {
        name: name.to_string(),
        opts: spec.opts,
        timeout: spec.timeout,
        text: spec.text,
    })
}

/// Parses the operand of an `EXEC` line: a statement name, then
/// `key=value` override tokens only — there is no query text, which is
/// the point.
fn parse_exec_request(rest: &str) -> Result<Request, String> {
    let mut tokens = rest.split_whitespace();
    let Some(name) = tokens.next() else {
        return Err("EXEC needs a statement name".to_string());
    };
    check_statement_name(name)?;
    let mut overrides = ExecOverrides::default();
    for token in tokens {
        match token.split_once('=') {
            Some(("limit", v)) => {
                overrides.limit = Some(
                    v.parse()
                        .map_err(|_| format!("limit= expects a count, got {v:?}"))?,
                );
            }
            Some(("timeout", v)) => overrides.timeout = Some(parse_timeout(v)?),
            Some(("threads", v)) => {
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("threads= expects a count, got {v:?}"))?;
                overrides.threads = Some(n.max(1));
            }
            _ => {
                return Err(format!(
                    "EXEC takes only limit=/timeout=/threads= overrides, got {token:?}"
                ))
            }
        }
    }
    Ok(Request::Exec {
        name: name.to_string(),
        overrides,
    })
}

/// Statement names keep to identifier-ish characters so request lines
/// stay unambiguous to eyeball and to parse.
fn check_statement_name(name: &str) -> Result<(), String> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(format!(
            "statement name {name:?} must be [A-Za-z0-9_.-]+ (and non-empty)"
        ))
    }
}

/// Parses a `timeout=` value: whole milliseconds. `0` is legal and means
/// "already expired" — useful for deterministic cancellation tests.
fn parse_timeout(v: &str) -> Result<Duration, String> {
    let ms: u64 = v
        .parse()
        .map_err(|_| format!("timeout= expects whole milliseconds, got {v:?}"))?;
    Ok(Duration::from_millis(ms))
}

fn parse_query_spec(verb: &str, mut rest: &str) -> Result<QuerySpec, String> {
    let mut opts = ExecOptions::default();
    let mut timeout = None;
    let mut explain = None;
    loop {
        rest = rest.trim_start();
        let token = rest.split_whitespace().next().unwrap_or("");
        let consumed = match token {
            "--" => {
                rest = &rest[token.len()..];
                break;
            }
            "explain" => {
                explain = Some(ExplainFormat::Human);
                true
            }
            "explain=json" => {
                explain = Some(ExplainFormat::Json);
                true
            }
            _ => match token.split_once('=') {
                Some(("algo", v)) if !v.is_empty() => {
                    opts.algo = Some(v.to_string());
                    true
                }
                Some(("threads", v)) => {
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("threads= expects a count, got {v:?}"))?;
                    // Mirror the CLI: any explicit thread request —
                    // including 0 — selects the parallel engine with at
                    // least one worker.
                    opts.threads = n.max(1);
                    true
                }
                Some(("limit", v)) => {
                    let k: usize = v
                        .parse()
                        .map_err(|_| format!("limit= expects a count, got {v:?}"))?;
                    opts.limit = Some(k);
                    true
                }
                Some(("timeout", v)) => {
                    timeout = Some(parse_timeout(v)?);
                    true
                }
                Some(("explain", v)) => {
                    return Err(format!("explain takes no value except json, got {v:?}"))
                }
                _ => false,
            },
        };
        if !consumed {
            break;
        }
        rest = &rest[token.len()..];
    }
    let text = rest.trim();
    if text.is_empty() {
        return Err(format!(
            "{verb} needs a query, e.g. {verb}{} limit=10 R(a,b), S(b,c)",
            if verb == "PREPARE" { " hot" } else { "" }
        ));
    }
    Ok(QuerySpec {
        opts,
        timeout,
        explain,
        text: text.to_string(),
    })
}

/// Parses the operand of a `W` line: an action keyword, then the target
/// relation, then (for row writes) the row's cells as bare tokens. Cell
/// *typing* is the session's job — the protocol layer has no schema.
fn parse_write_request(rest: &str) -> Result<Request, String> {
    let mut tokens = rest.split_whitespace();
    let action = tokens.next().unwrap_or("");
    match action {
        "INSERT" | "DELETE" => {
            let Some(relation) = tokens.next() else {
                return Err(format!("W {action} needs a relation name"));
            };
            let cells: Vec<String> = tokens.map(str::to_string).collect();
            if cells.is_empty() {
                return Err(format!(
                    "W {action} {relation} needs a row, e.g. W {action} {relation} 1 2"
                ));
            }
            Ok(Request::Write {
                action: if action == "INSERT" {
                    WriteAction::Insert
                } else {
                    WriteAction::Delete
                },
                relation: relation.to_string(),
                cells,
            })
        }
        "COMPACT" => {
            let relation = tokens.next().map(str::to_string);
            if tokens.next().is_some() {
                return Err("W COMPACT takes at most one relation".to_string());
            }
            Ok(Request::Compact { relation })
        }
        "CHECKPOINT" => {
            if tokens.next().is_some() {
                return Err("W CHECKPOINT takes no operand".to_string());
            }
            Ok(Request::Checkpoint)
        }
        "" => Err("W needs an action (INSERT, DELETE, COMPACT, or CHECKPOINT)".to_string()),
        other => Err(format!(
            "unknown write action {other:?} (expected INSERT, DELETE, COMPACT, or CHECKPOINT)"
        )),
    }
}

/// Renders the `OK` terminator for a body of `rows` data rows.
pub fn ok_line(rows: usize) -> String {
    format!("OK {rows}")
}

/// Renders an `ERR` line; the message is flattened to one line.
pub fn err_line(code: &str, message: &str) -> String {
    format!("ERR {code} {}", message.replace('\n', "; "))
}

/// Classifies one raw response line (the client side of the framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseLine {
    /// A body line, already stripped of its [`BODY_PREFIX`].
    Body(String),
    /// The success terminator with its data-row count.
    Ok(u64),
    /// A failure terminator: `(code, message)`.
    Err(String, String),
}

/// Parses one response line. `None` for lines that violate the framing
/// (a server this client should stop trusting).
pub fn parse_response_line(line: &str) -> Option<ResponseLine> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    if let Some(body) = line.strip_prefix(BODY_PREFIX) {
        return Some(ResponseLine::Body(body.to_string()));
    }
    if let Some(rest) = line.strip_prefix("OK ") {
        return rest.trim().parse().ok().map(ResponseLine::Ok);
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        let (code, msg) = rest.split_once(' ').unwrap_or((rest, ""));
        return Some(ResponseLine::Err(code.to_string(), msg.to_string()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("STATS\r"), Ok(Request::Stats));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
        assert!(parse_request("PING now").is_err());
        assert!(parse_request("").is_err());
        assert!(parse_request("HELLO").unwrap_err().contains("unknown verb"));
    }

    #[test]
    fn query_options_map_onto_exec_options() {
        let Request::Query {
            opts,
            timeout,
            explain,
            text,
        } = parse_request("Q algo=leapfrog threads=3 limit=7 timeout=250 R(a,b), S(b,c)").unwrap()
        else {
            panic!("expected a query");
        };
        assert_eq!(opts.algo.as_deref(), Some("leapfrog"));
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.limit, Some(7));
        assert_eq!(timeout, Some(Duration::from_millis(250)));
        assert_eq!(explain, None);
        assert_eq!(text, "R(a,b), S(b,c)");
        // Without timeout= there is no deadline budget at all.
        let Request::Query { timeout, .. } = parse_request("Q R(a,b)").unwrap() else {
            panic!()
        };
        assert_eq!(timeout, None);
    }

    #[test]
    fn prepare_exec_unprepare_parse() {
        let Request::Prepare {
            name,
            opts,
            timeout,
            text,
        } = parse_request("PREPARE hot algo=leapfrog timeout=50 -- R(a,b), S(b,c)").unwrap()
        else {
            panic!("expected PREPARE");
        };
        assert_eq!(name, "hot");
        assert_eq!(opts.algo.as_deref(), Some("leapfrog"));
        assert_eq!(timeout, Some(Duration::from_millis(50)));
        assert_eq!(text, "R(a,b), S(b,c)");

        let Request::Exec { name, overrides } =
            parse_request("EXEC hot limit=5 timeout=100 threads=2").unwrap()
        else {
            panic!("expected EXEC");
        };
        assert_eq!(name, "hot");
        assert_eq!(overrides.limit, Some(5));
        assert_eq!(overrides.timeout, Some(Duration::from_millis(100)));
        assert_eq!(overrides.threads, Some(2));

        assert_eq!(
            parse_request("EXEC hot"),
            Ok(Request::Exec {
                name: "hot".to_string(),
                overrides: ExecOverrides::default(),
            })
        );
        assert_eq!(
            parse_request("UNPREPARE hot"),
            Ok(Request::Unprepare {
                name: "hot".to_string()
            })
        );
    }

    #[test]
    fn malformed_prepared_statement_requests_are_proto_errors() {
        assert!(parse_request("PREPARE").is_err(), "name + query required");
        assert!(parse_request("PREPARE hot").is_err(), "query required");
        assert!(parse_request("PREPARE h@t -- R(x)").is_err(), "bad name");
        assert!(
            parse_request("PREPARE hot explain R(x)").is_err(),
            "explain is for Q"
        );
        assert!(parse_request("EXEC").is_err(), "name required");
        assert!(parse_request("EXEC hot R(x)").is_err(), "no query text");
        assert!(
            parse_request("EXEC hot algo=naive").is_err(),
            "no algo override"
        );
        assert!(parse_request("UNPREPARE").is_err(), "name required");
        assert!(parse_request("UNPREPARE a b").is_err(), "one name only");
        assert!(parse_request("Q timeout=soon R(x)").is_err(), "ms required");
    }

    #[test]
    fn explain_and_separator() {
        let Request::Query { explain, text, .. } =
            parse_request("Q explain=json -- R(x, y)").unwrap()
        else {
            panic!("expected a query");
        };
        assert_eq!(explain, Some(ExplainFormat::Json));
        assert_eq!(text, "R(x, y)");
        let Request::Query { text, .. } = parse_request("Q explain R(x)").unwrap() else {
            panic!()
        };
        assert_eq!(text, "R(x)");
    }

    #[test]
    fn threads_zero_selects_one_worker_like_the_cli() {
        let Request::Query { opts, .. } = parse_request("Q threads=0 R(x)").unwrap() else {
            panic!()
        };
        assert_eq!(opts.threads, 1);
    }

    #[test]
    fn malformed_options_are_proto_errors() {
        assert!(parse_request("Q threads=lots R(x)").is_err());
        assert!(parse_request("Q limit=-3 R(x)").is_err());
        assert!(parse_request("Q explain=yaml R(x)").is_err());
        assert!(parse_request("Q").is_err(), "query text required");
        assert!(parse_request("Q limit=3").is_err(), "options alone too");
    }

    #[test]
    fn unrecognized_token_starts_the_query() {
        let Request::Query { opts, text, .. } = parse_request("Q weird=thing R(x)").unwrap() else {
            panic!()
        };
        assert!(opts.algo.is_none());
        assert_eq!(text, "weird=thing R(x)", "not an option, so query text");
    }

    #[test]
    fn write_requests_parse() {
        assert_eq!(
            parse_request("W INSERT F jfk sfo"),
            Ok(Request::Write {
                action: WriteAction::Insert,
                relation: "F".to_string(),
                cells: vec!["jfk".to_string(), "sfo".to_string()],
            })
        );
        assert_eq!(
            parse_request("W DELETE R 1 2\r"),
            Ok(Request::Write {
                action: WriteAction::Delete,
                relation: "R".to_string(),
                cells: vec!["1".to_string(), "2".to_string()],
            })
        );
        assert_eq!(
            parse_request("W COMPACT"),
            Ok(Request::Compact { relation: None })
        );
        assert_eq!(
            parse_request("W COMPACT R"),
            Ok(Request::Compact {
                relation: Some("R".to_string())
            })
        );
        assert_eq!(parse_request("W CHECKPOINT"), Ok(Request::Checkpoint));
    }

    #[test]
    fn malformed_writes_are_proto_errors() {
        assert!(parse_request("W").is_err(), "action required");
        assert!(parse_request("W UPSERT R 1").is_err(), "unknown action");
        assert!(parse_request("W INSERT").is_err(), "relation required");
        assert!(parse_request("W INSERT R").is_err(), "row required");
        assert!(parse_request("W COMPACT R S").is_err(), "one relation max");
        assert!(parse_request("W CHECKPOINT now").is_err(), "no operand");
    }

    #[test]
    fn response_lines_round_trip() {
        assert_eq!(
            parse_response_line(&ok_line(42)),
            Some(ResponseLine::Ok(42))
        );
        assert_eq!(
            parse_response_line(&err_line("PARSE", "bad\nquery")),
            Some(ResponseLine::Err(
                "PARSE".to_string(),
                "bad; query".to_string()
            ))
        );
        assert_eq!(
            parse_response_line("|1\t2\t3"),
            Some(ResponseLine::Body("1\t2\t3".to_string()))
        );
        assert_eq!(parse_response_line("gibberish"), None);
    }
}
