//! The one place query results become bytes.
//!
//! Both front doors — the `msj` CLI printing to stdout and the `msj
//! serve` TCP service streaming to a socket (see [`crate::server`]) —
//! emit the *same* textual result shape: a `# col…` header line,
//! tab-separated data rows, and a truncation marker when a `limit` cut
//! the result. The service's acceptance contract is that its response
//! body is **byte-identical** to the CLI's stdout for the same query and
//! options; rather than asserting that equivalence across two
//! implementations, this module is the single implementation both call.
//!
//! [`write_body`] reproduces the dispatch-dependent output shapes:
//!
//! * **serial engine, no limit** — materialized sorted rows;
//! * **serial engine, `limit k`** — the lazy stream's first `k` tuples
//!   (global attribute order) plus `# … output truncated at k` when more
//!   existed, the suffix's probe work never paid;
//! * **parallel engine (`threads > 0`)** — identical bytes to the serial
//!   engine in both modes, by the global-order merge's contract; under a
//!   limit the remaining shard work is **cancelled**;
//! * **registry baseline** — materialized sorted rows with the
//!   `# … N more` marker (baselines run to completion, so the exact
//!   remainder is known).
//!
//! Writes are checked: a consumer that goes away (a closed pipe, a
//! disconnected client) surfaces as an [`io::Error`], upon which the
//! open stream is dropped — which *cancels* queued and in-flight shard
//! work — and the outcome reports [`BodyOutcome::disconnected`] instead
//! of treating the lost consumer as a failure.

use std::io::{self, Write};

use minesweeper_baselines::lookup;
use minesweeper_core::{json_string, ShardStats};
use minesweeper_storage::{ExecStats, Value};

use crate::engine::{DispatchKind, EngineError, ExecOptions, PreparedStatement};

/// What [`write_body`] did: how many data rows went out, whether the
/// consumer disconnected mid-stream (the body is then a prefix), and the
/// execution counters for the work actually performed.
#[derive(Debug)]
pub struct BodyOutcome {
    /// Data rows written (header and marker lines not counted).
    pub rows: usize,
    /// True when a write failed: the consumer is gone and any remaining
    /// stream work was cancelled. Callers treat this as "stop quietly",
    /// not as an error.
    pub disconnected: bool,
    /// Counters for the work performed (the shown prefix under a limit).
    pub stats: ExecStats,
    /// Per-shard counters, when the parallel engine ran.
    pub shards: Option<Vec<ShardStats>>,
    /// True when the request's deadline ([`ExecOptions::deadline`])
    /// passed mid-stream: the body is a prefix, the remaining work was
    /// cancelled server-side, and the caller owes the consumer an
    /// `ERR DEADLINE` terminator instead of `OK`. Materializing paths
    /// never set this — they surface expiry as
    /// [`EngineError::DeadlineExceeded`] before any byte is written.
    pub deadline_exceeded: bool,
}

/// One output row as tab-separated cells.
fn row_text(row: &[Value]) -> String {
    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    cells.join("\t")
}

/// Writes the full result body for `stmt` under `opts` (see the module
/// docs for the shapes). Execution errors are returned; consumer
/// disconnects are reported in the outcome.
pub fn write_body(
    out: &mut impl Write,
    stmt: &PreparedStatement,
    opts: &ExecOptions,
) -> Result<BodyOutcome, EngineError> {
    let kind = stmt.dispatch_kind(opts)?;
    // Counters are cheap and callers (server metrics, `--stats`) always
    // want them; the body bytes do not depend on this flag.
    let mut run_opts = opts.clone();
    run_opts.collect_stats = true;

    match kind {
        DispatchKind::Baseline(_) => {
            // Baselines materialize everything; the display limit is
            // applied afterwards, so the exact remainder is known.
            let display_limit = run_opts.limit;
            run_opts.limit = None;
            let result = stmt.execute(&run_opts)?;
            let shown = display_limit.unwrap_or(usize::MAX).min(result.rows.len());
            let mut w = CheckedWriter::new(out);
            w.line(format_args!("# {}", result.columns.join("\t")));
            for r in &result.rows[..shown] {
                w.data_line(format_args!("{}", row_text(r)));
            }
            if result.rows.len() > shown {
                w.line(format_args!("# … {} more", result.rows.len() - shown));
            }
            Ok(BodyOutcome {
                rows: w.rows,
                disconnected: w.disconnected,
                stats: result.stats.unwrap_or_default(),
                shards: None,
                deadline_exceeded: false,
            })
        }
        DispatchKind::Parallel(_) if run_opts.limit.is_some() => {
            let k = run_opts.limit.expect("guarded");
            // The incremental parallel stream: the global-order heap
            // merge yields the serial stream's exact prefix; the stream
            // itself enforces the cap and cancels remaining shards.
            let mut stream = stmt.stream(&run_opts)?;
            let mut w = CheckedWriter::new(out);
            w.line(format_args!("# {}", stmt.columns().join("\t")));
            let mut yielded = 0usize;
            while !w.disconnected && yielded < k {
                let Some(row) = stream.next() else { break };
                w.data_line(format_args!("{}", row_text(&row)));
                yielded += 1;
            }
            // A deadline that passed mid-stream ends the body here: no
            // truncation marker (the body is not a truthful `limit` cut),
            // just a prefix the session terminates with `ERR DEADLINE`.
            let deadline_exceeded = stream.deadline_expired();
            if !w.disconnected && !deadline_exceeded && yielded == k && stream.truncated() {
                w.line(format_args!("# … output truncated at {k}"));
            }
            // Join the workers (cancelling any still outstanding — the
            // disconnect and deadline paths) so the counters are final
            // and stable.
            let (stats, shards) = stream.finish();
            Ok(BodyOutcome {
                rows: yielded,
                disconnected: w.disconnected,
                stats,
                shards,
                deadline_exceeded,
            })
        }
        DispatchKind::Serial if run_opts.limit.is_some() => {
            let k = run_opts.limit.expect("guarded");
            // Limit pushdown: stream without a cap, take `k`, and probe
            // exactly one tuple further for the truncation marker. The
            // stats snapshot happens before the peek so counters reflect
            // only the shown prefix — the CLI's historical contract.
            let stream_opts = ExecOptions {
                limit: None,
                ..run_opts.clone()
            };
            let mut stream = stmt.stream(&stream_opts)?;
            let mut w = CheckedWriter::new(out);
            w.line(format_args!("# {}", stmt.columns().join("\t")));
            let mut yielded = 0usize;
            while !w.disconnected && yielded < k {
                let Some(row) = stream.next() else { break };
                w.data_line(format_args!("{}", row_text(&row)));
                yielded += 1;
            }
            let stats = stream.stats();
            let deadline_exceeded = stream.deadline_expired();
            if !w.disconnected && !deadline_exceeded && yielded == k && stream.next().is_some() {
                w.line(format_args!("# … output truncated at {k}"));
            }
            Ok(BodyOutcome {
                rows: yielded,
                disconnected: w.disconnected,
                stats,
                shards: None,
                deadline_exceeded,
            })
        }
        DispatchKind::Serial | DispatchKind::Parallel(_) => {
            // No limit: materialize (sorted in the query's attribute
            // order — identical bytes for both engines).
            let result = stmt.execute(&run_opts)?;
            let mut w = CheckedWriter::new(out);
            w.line(format_args!("# {}", result.columns.join("\t")));
            for r in &result.rows {
                w.data_line(format_args!("{}", row_text(r)));
            }
            Ok(BodyOutcome {
                rows: w.rows,
                disconnected: w.disconnected,
                stats: result.stats.unwrap_or_default(),
                shards: result.shards,
                deadline_exceeded: false,
            })
        }
    }
}

/// Writes the explain output for `stmt` under `opts` — the `--explain`
/// / `--explain-json` stdout shape, shared by the CLI and the service's
/// `explain` request option. Returns whether the consumer stayed
/// connected.
pub fn write_explain(
    out: &mut impl Write,
    stmt: &PreparedStatement,
    opts: &ExecOptions,
    json: bool,
) -> Result<bool, EngineError> {
    let mut w = CheckedWriter::new(out);
    if let DispatchKind::Baseline(name) = stmt.dispatch_kind(opts)? {
        // Baselines have no Minesweeper plan: say so rather than
        // mislabelling the planner's GAO/bound as the baseline's.
        let a = lookup(&name).expect("canonical baseline name resolves");
        if json {
            w.line(format_args!(
                "{{\"algorithm\":{},\"description\":{},\"plan\":null}}",
                json_string(a.name()),
                json_string(a.description())
            ));
        } else {
            w.line(format_args!(
                "algorithm: {} — {}",
                a.name(),
                a.description()
            ));
            w.line(format_args!(
                "(no Minesweeper plan applies; GAO/probe-mode planning is \
                 specific to the default engine)"
            ));
        }
        return Ok(!w.disconnected);
    }
    let ep = stmt.explain(opts)?;
    if json {
        w.line(format_args!("{}", ep.to_json()));
    } else {
        w.line(format_args!("{}", ep.render()));
    }
    Ok(!w.disconnected)
}

/// A line writer that records the first failed write instead of
/// propagating it: once the consumer is gone every further write is
/// skipped, and the caller reads `disconnected` to stop quietly.
struct CheckedWriter<'w, W: Write> {
    out: &'w mut W,
    rows: usize,
    disconnected: bool,
}

impl<'w, W: Write> CheckedWriter<'w, W> {
    fn new(out: &'w mut W) -> Self {
        CheckedWriter {
            out,
            rows: 0,
            disconnected: false,
        }
    }

    /// Writes one non-data line (header, marker).
    fn line(&mut self, line: std::fmt::Arguments<'_>) {
        if self.disconnected {
            return;
        }
        if writeln!(self.out, "{line}").is_err() {
            self.disconnected = true;
        }
    }

    /// Writes one data row, counting it.
    fn data_line(&mut self, line: std::fmt::Arguments<'_>) {
        if self.disconnected {
            return;
        }
        if writeln!(self.out, "{line}").is_err() {
            self.disconnected = true;
        } else {
            self.rows += 1;
        }
    }
}

/// Convenience used by tests and the load generator: the body bytes for
/// `stmt` under `opts`, exactly as the CLI would print them.
pub fn body_string(stmt: &PreparedStatement, opts: &ExecOptions) -> Result<String, EngineError> {
    let mut buf = Vec::new();
    let outcome = write_body(&mut buf, stmt, opts)?;
    debug_assert!(!outcome.disconnected, "Vec writes cannot fail");
    Ok(String::from_utf8(buf).expect("result bodies are UTF-8"))
}

/// The io-error kinds that mean "the consumer went away" on a socket or
/// pipe — shared by the server session and the CLI for deciding between
/// a quiet stop and a real error.
pub fn is_disconnect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use minesweeper_storage::{ColumnType, Value};

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.add_relation(
            "F",
            &[ColumnType::Str, ColumnType::Str],
            [
                vec![Value::from("jfk"), Value::from("lhr")],
                vec![Value::from("lhr"), Value::from("nrt")],
                vec![Value::from("sfo"), Value::from("jfk")],
            ],
        )
        .unwrap();
        e
    }

    #[test]
    fn serial_and_parallel_bodies_are_identical() {
        let e = engine();
        let stmt = e.prepare("F(a, b), F(b, c)").unwrap();
        let serial = body_string(&stmt, &ExecOptions::default()).unwrap();
        let par = body_string(&stmt, &ExecOptions::default().with_threads(3)).unwrap();
        assert_eq!(serial, par);
        assert!(serial.starts_with("# a\tb\tc\n"), "{serial}");
    }

    #[test]
    fn limit_bodies_match_and_mark_truncation() {
        let e = engine();
        let stmt = e.prepare("F(a, b)").unwrap();
        let serial = body_string(&stmt, &ExecOptions::default().with_limit(2)).unwrap();
        let par =
            body_string(&stmt, &ExecOptions::default().with_limit(2).with_threads(2)).unwrap();
        assert_eq!(serial, par);
        assert!(serial.contains("# … output truncated at 2"), "{serial}");
    }

    #[test]
    fn baseline_body_marks_remainder() {
        let e = engine();
        let stmt = e.prepare("F(a, b)").unwrap();
        let opts = ExecOptions::default().with_algo("naive").with_limit(1);
        let body = body_string(&stmt, &opts).unwrap();
        assert!(body.contains("# … 2 more"), "{body}");
    }

    #[test]
    fn disconnect_is_reported_not_fatal() {
        /// A writer that fails after `n` successful writes.
        struct Flaky(usize);
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let e = engine();
        let stmt = e.prepare("F(a, b)").unwrap();
        let outcome = write_body(&mut Flaky(2), &stmt, &ExecOptions::default()).unwrap();
        assert!(outcome.disconnected);
        assert!(outcome.rows < 3, "a prefix at most: {}", outcome.rows);
    }
}
