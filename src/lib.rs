//! # minesweeper-join
//!
//! A faithful, from-scratch Rust implementation of **"Beyond Worst-case
//! Analysis for Joins with Minesweeper"** (Hung Q. Ngo, Dung T. Nguyen,
//! Christopher Ré, Atri Rudra; PODS 2014, full version arXiv:1302.0914).
//!
//! Minesweeper is a natural-join algorithm for relations stored in ordered
//! indexes. Instead of scanning, it keeps a *constraint data structure* of
//! the gaps it has discovered in the output space and repeatedly probes
//! the first point not yet excluded. Its runtime is measured against the
//! smallest **certificate** `C` — the fewest comparisons any
//! comparison-based algorithm must make to certify the output:
//!
//! * β-acyclic queries, nested elimination order GAO: `Õ(|C| + Z)`
//!   (Theorem 2.7) — *instance optimal* up to a log factor;
//! * general queries with elimination width `w`: `Õ(|C|^{w+1} + Z)`
//!   (Theorem 5.1);
//! * the triangle query with a dyadic CDS: `Õ(|C|^{3/2} + Z)`
//!   (Theorem 5.4).
//!
//! ## Quick start
//!
//! The front door is the [`engine::Engine`]: it owns the database, a
//! schema catalog with typed (integer *and* string) columns behind a
//! dictionary encoder, and a prepared-statement cache, so planning and
//! GAO re-indexing are paid once per query shape and repeated executions
//! go straight to the probe loop:
//!
//! ```
//! use minesweeper_join::engine::{Engine, ExecOptions};
//! use minesweeper_join::storage::Value;
//!
//! let mut engine = Engine::new();
//! engine.load_tsv("R", "1 5\n2 7\n4 9\n").unwrap();
//! engine.load_tsv("T", "5\n9\n").unwrap();
//!
//! // Prepare once: parse + plan + (if needed) re-index, all cached.
//! let stmt = engine.prepare("R(x, y), T(y)").unwrap();
//! let result = stmt.execute(&ExecOptions::default()).unwrap();
//! assert_eq!(result.columns, vec!["x", "y"]);
//! assert_eq!(result.rows[0], vec![Value::Int(1), Value::Int(5)]);
//!
//! // A repeat prepare (any variable names) hits the cache.
//! let again = engine.prepare("R(a, b), T(b)").unwrap();
//! assert!(again.cache_hit());
//! ```
//!
//! Underneath sits the plan/execute split: [`core::plan()`] makes every
//! decision that doesn't touch tuples (GAO choice, probe mode, re-index
//! mapping) and returns a reusable [`core::Plan`]; [`core::Plan::stream`]
//! opens a lazy [`core::TupleStream`] that yields tuples as they are
//! certified — stop after `k` tuples and the remaining certificate work is
//! never paid. [`core::execute()`] is the materialize-everything wrapper,
//! [`core::Plan::execute_parallel`] its sharded multi-threaded twin, and
//! [`core::ShardedStream`] the incremental parallel form (background
//! workers, bounded channels, early cancellation).
//!
//! ```
//! use minesweeper_join::prelude::*;
//!
//! // Build a database of ordered relations.
//! let mut db = Database::new();
//! let r = db.add(builder::unary("R", [1, 2, 4])).unwrap();
//! let s = db.add(builder::binary("S", [(1, 5), (2, 7), (4, 9)])).unwrap();
//! let t = db.add(builder::unary("T", [5, 9])).unwrap();
//!
//! // The bow-tie query R(X) ⋈ S(X,Y) ⋈ T(Y); attributes are GAO positions.
//! let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
//!
//! // Plan once (β-acyclic ⇒ chain mode), then stream lazily …
//! let p = plan(&db, &q).unwrap();
//! let mut stream = p.stream(&db).unwrap();
//! assert_eq!(stream.next(), Some(vec![1, 5]));
//! // … statistics are live mid-stream (FindGap count ≈ the paper's |C|):
//! assert!(stream.stats().find_gap_calls < 40);
//! assert_eq!(stream.next(), Some(vec![4, 9]));
//!
//! // Or materialize everything, sorted in the original attribute order:
//! let result = p.execute(&db).unwrap().result;
//! assert_eq!(result.tuples, vec![vec![1, 5], vec![4, 9]]);
//!
//! // Every evaluator — Minesweeper and all baselines — is also reachable
//! // through the `Algorithm` registry:
//! let lftj = lookup("leapfrog").unwrap();
//! assert_eq!(lftj.run(&db, &q).unwrap().tuples, result.tuples);
//! ```
//!
//! ## Crates
//!
//! | Crate | Contents |
//! |---|---|
//! | [`storage`] | sorted-trie relations, `FindGap`, cursors, catalog |
//! | [`hypergraph`] | GYO, β-acyclicity, nested elimination orders, treewidth |
//! | [`cds`] | interval sets, `ConstraintTree`, shadow chains, triangle CDS |
//! | [`core`] | the Minesweeper algorithm and its specializations |
//! | [`baselines`] | Yannakakis, LFTJ, NPRR, binary plans, DLM intersection |
//! | [`workloads`] | synthetic graphs and the paper's instance families |

#[warn(missing_docs)]
pub mod engine;
#[warn(missing_docs)]
pub mod render;
#[warn(missing_docs)]
pub mod server;
pub mod text;

/// Re-export of `minesweeper-storage`.
pub use minesweeper_storage as storage;

/// Re-export of `minesweeper-durability`.
pub use minesweeper_durability as durability;

/// Re-export of `minesweeper-hypergraph`.
pub use minesweeper_hypergraph as hypergraph;

/// Re-export of `minesweeper-cds`.
pub use minesweeper_cds as cds;

/// Re-export of `minesweeper-core`.
pub use minesweeper_core as core;

/// Re-export of `minesweeper-baselines`.
pub use minesweeper_baselines as baselines;

/// Re-export of `minesweeper-workloads`.
pub use minesweeper_workloads as workloads;

/// The most common imports in one place: the engine front door
/// ([`engine::Engine`], [`engine::PreparedStatement`],
/// [`engine::ExecOptions`]), the plan/stream API ([`core::plan()`],
/// [`core::Plan`], [`core::TupleStream`]), the [`core::Algorithm`] trait
/// with its baselines registry ([`baselines::registry::lookup`]), and the
/// storage/CDS types they rely on.
pub mod prelude {
    pub use crate::engine::{Engine, ExecOptions, PreparedStatement, StatementResult};
    pub use minesweeper_baselines::{algorithm_names, algorithms, lookup, lookup_configured};
    pub use minesweeper_cds::{Constraint, ConstraintTree, IntervalSet, Pattern, ProbeMode};
    pub use minesweeper_core::{
        bowtie_join, canonical_certificate_size, choose_gao, execute, minesweeper_join, naive_join,
        plan, reindex_for_gao, set_intersection, triangle_join, Algorithm, Execution, ExplainPlan,
        JoinResult, Plan, PreparedExec, PreparedPlan, Query, ShardStats, ShardedExecution,
        ShardedPlan, ShardedStream, TupleStream,
    };
    pub use minesweeper_storage::{
        builder, ColumnType, Database, Dictionary, ExecStats, GapCursor, RelId, ShardBounds,
        ShardSpec, TrieRelation, Val, Value,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_sufficient_for_a_join() {
        let mut db = Database::new();
        let a = db.add(builder::unary("A", [1, 2, 3])).unwrap();
        let b = db.add(builder::unary("B", [2, 3, 4])).unwrap();
        let q = Query::new(1).atom(a, &[0]).atom(b, &[0]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert_eq!(res.tuples, vec![vec![2], vec![3]]);
    }

    #[test]
    fn prelude_is_sufficient_for_plan_stream_and_registry() {
        let mut db = Database::new();
        let a = db.add(builder::unary("A", [1, 2, 3])).unwrap();
        let b = db.add(builder::unary("B", [2, 3, 4])).unwrap();
        let q = Query::new(1).atom(a, &[0]).atom(b, &[0]);
        let p: Plan = plan(&db, &q).unwrap();
        let first: Vec<_> = p.stream(&db).unwrap().take(1).collect();
        assert_eq!(first, vec![vec![2]]);
        let exec: Execution = p.execute(&db).unwrap();
        assert_eq!(exec.result.tuples, vec![vec![2], vec![3]]);
        for algo in algorithms() {
            assert!(algo.supports(&q));
            assert_eq!(algo.run(&db, &q).unwrap().tuples, exec.result.tuples);
        }
        assert!(lookup("minesweeper").is_some());
        assert_eq!(algorithm_names().first(), Some(&"minesweeper"));
    }
}
