//! # minesweeper-join
//!
//! A faithful, from-scratch Rust implementation of **"Beyond Worst-case
//! Analysis for Joins with Minesweeper"** (Hung Q. Ngo, Dung T. Nguyen,
//! Christopher Ré, Atri Rudra; PODS 2014, full version arXiv:1302.0914).
//!
//! Minesweeper is a natural-join algorithm for relations stored in ordered
//! indexes. Instead of scanning, it keeps a *constraint data structure* of
//! the gaps it has discovered in the output space and repeatedly probes
//! the first point not yet excluded. Its runtime is measured against the
//! smallest **certificate** `C` — the fewest comparisons any
//! comparison-based algorithm must make to certify the output:
//!
//! * β-acyclic queries, nested elimination order GAO: `Õ(|C| + Z)`
//!   (Theorem 2.7) — *instance optimal* up to a log factor;
//! * general queries with elimination width `w`: `Õ(|C|^{w+1} + Z)`
//!   (Theorem 5.1);
//! * the triangle query with a dyadic CDS: `Õ(|C|^{3/2} + Z)`
//!   (Theorem 5.4).
//!
//! ## Quick start
//!
//! ```
//! use minesweeper_join::prelude::*;
//!
//! // Build a database of ordered relations.
//! let mut db = Database::new();
//! let r = db.add(builder::unary("R", [1, 2, 4])).unwrap();
//! let s = db.add(builder::binary("S", [(1, 5), (2, 7), (4, 9)])).unwrap();
//! let t = db.add(builder::unary("T", [5, 9])).unwrap();
//!
//! // The bow-tie query R(X) ⋈ S(X,Y) ⋈ T(Y); attributes are GAO positions.
//! let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
//!
//! // Pick a GAO (β-acyclic ⇒ chain mode) and join.
//! let choice = choose_gao(&q, 8);
//! let result = minesweeper_join(&db, &q, choice.mode).unwrap();
//! assert_eq!(result.tuples, vec![vec![1, 5], vec![4, 9]]);
//!
//! // The certificate-size proxy the paper measures (FindGap count):
//! assert!(result.stats.find_gap_calls < 40);
//! ```
//!
//! ## Crates
//!
//! | Crate | Contents |
//! |---|---|
//! | [`storage`] | sorted-trie relations, `FindGap`, cursors, catalog |
//! | [`hypergraph`] | GYO, β-acyclicity, nested elimination orders, treewidth |
//! | [`cds`] | interval sets, `ConstraintTree`, shadow chains, triangle CDS |
//! | [`core`] | the Minesweeper algorithm and its specializations |
//! | [`baselines`] | Yannakakis, LFTJ, NPRR, binary plans, DLM intersection |
//! | [`workloads`] | synthetic graphs and the paper's instance families |

pub mod text;

/// Re-export of `minesweeper-storage`.
pub use minesweeper_storage as storage;

/// Re-export of `minesweeper-hypergraph`.
pub use minesweeper_hypergraph as hypergraph;

/// Re-export of `minesweeper-cds`.
pub use minesweeper_cds as cds;

/// Re-export of `minesweeper-core`.
pub use minesweeper_core as core;

/// Re-export of `minesweeper-baselines`.
pub use minesweeper_baselines as baselines;

/// Re-export of `minesweeper-workloads`.
pub use minesweeper_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use minesweeper_cds::{Constraint, ConstraintTree, IntervalSet, Pattern, ProbeMode};
    pub use minesweeper_core::{
        bowtie_join, canonical_certificate_size, choose_gao, minesweeper_join, naive_join,
        reindex_for_gao, set_intersection, triangle_join, JoinResult, Query,
    };
    pub use minesweeper_storage::{builder, Database, ExecStats, RelId, TrieRelation, Val};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_sufficient_for_a_join() {
        let mut db = Database::new();
        let a = db.add(builder::unary("A", [1, 2, 3])).unwrap();
        let b = db.add(builder::unary("B", [2, 3, 4])).unwrap();
        let q = Query::new(1).atom(a, &[0]).atom(b, &[0]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        assert_eq!(res.tuples, vec![vec![2], vec![3]]);
    }
}
