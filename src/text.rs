//! Plain-text relation loading and a minimal query syntax, for the `msj`
//! command-line tool and for embedding in tests/scripts.
//!
//! ## Relation files
//!
//! One tuple per line, columns separated by whitespace, `#` comments and
//! blank lines ignored:
//!
//! ```text
//! # edge list
//! 1   2
//! 2   3
//! ```
//!
//! ## Query syntax
//!
//! A query is a `⋈`- or `,`-separated list of atoms `Name(Attr, …)`;
//! attribute names are arbitrary identifiers, and the **global attribute
//! order is the order of first appearance** (so write the query in the
//! GAO you want, or let the planner re-index):
//!
//! ```text
//! R(x, y), S(y, z), T(z)
//! ```

use std::collections::BTreeMap;
use std::fmt;

use minesweeper_core::{Plan, Query};
use minesweeper_storage::{Database, RelationBuilder, StorageError, TrieRelation, Val};

/// Errors from parsing relation files or query strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// A tuple line failed to parse.
    BadTuple {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Tuple lines had inconsistent arity.
    InconsistentArity {
        /// 1-based line number.
        line: usize,
        /// Arity of the first tuple.
        expected: usize,
        /// Arity found on this line.
        got: usize,
    },
    /// The relation file had no tuples (arity cannot be inferred).
    EmptyRelation,
    /// The query string failed to parse.
    BadQuery(String),
    /// An atom referenced a relation not loaded into the database.
    UnknownRelation(String),
    /// An atom's attribute count does not match its relation's arity.
    AtomArity {
        /// Relation name.
        relation: String,
        /// Attribute count in the atom.
        atom: usize,
        /// Column count of the relation.
        relation_arity: usize,
    },
    /// Storage-level failure while building the relation.
    Storage(String),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::BadTuple { line, token } => {
                write!(f, "line {line}: cannot parse value {token:?}")
            }
            TextError::InconsistentArity { line, expected, got } => {
                write!(f, "line {line}: expected {expected} columns, found {got}")
            }
            TextError::EmptyRelation => write!(f, "relation file contains no tuples"),
            TextError::BadQuery(msg) => write!(f, "query syntax error: {msg}"),
            TextError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            TextError::AtomArity { relation, atom, relation_arity } => write!(
                f,
                "atom over {relation} has {atom} attributes but the relation has arity {relation_arity}"
            ),
            TextError::Storage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<StorageError> for TextError {
    fn from(e: StorageError) -> Self {
        TextError::Storage(e.to_string())
    }
}

/// Parses a whitespace-separated tuple file into a relation. Arity is
/// inferred from the first tuple line.
pub fn parse_relation(name: &str, text: &str) -> Result<TrieRelation, TextError> {
    let mut builder: Option<RelationBuilder> = None;
    let mut arity = 0usize;
    let mut row: Vec<Val> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        row.clear();
        for token in line.split_whitespace() {
            let v: Val = token.parse().map_err(|_| TextError::BadTuple {
                line: i + 1,
                token: token.to_string(),
            })?;
            row.push(v);
        }
        match &mut builder {
            None => {
                arity = row.len();
                let mut b = RelationBuilder::new(name, arity);
                b.push(&row);
                builder = Some(b);
            }
            Some(b) => {
                if row.len() != arity {
                    return Err(TextError::InconsistentArity {
                        line: i + 1,
                        expected: arity,
                        got: row.len(),
                    });
                }
                b.push(&row);
            }
        }
    }
    let builder = builder.ok_or(TextError::EmptyRelation)?;
    Ok(builder.build()?)
}

/// A parsed query: the attribute names in GAO (first-appearance) order and
/// the query over a database.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// Attribute names; index = GAO position.
    pub attr_names: Vec<String>,
    /// The query, with atoms bound to `db`'s relations.
    pub query: Query,
}

/// Parses `R(x, y), S(y, z)`-style query text against a database. The GAO
/// is the order of first appearance of each attribute name.
pub fn parse_query(text: &str, db: &Database) -> Result<ParsedQuery, TextError> {
    let mut attr_ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut attr_names: Vec<String> = Vec::new();
    let mut atoms: Vec<(String, Vec<usize>)> = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let open = rest
            .find('(')
            .ok_or_else(|| TextError::BadQuery(format!("expected '(' in {rest:?}")))?;
        let name = rest[..open].trim().trim_start_matches([',', '⋈']).trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(TextError::BadQuery(format!("bad relation name {name:?}")));
        }
        let close = rest[open..]
            .find(')')
            .map(|p| open + p)
            .ok_or_else(|| TextError::BadQuery("unbalanced parentheses".to_string()))?;
        let args = &rest[open + 1..close];
        let mut positions = Vec::new();
        for raw in args.split(',') {
            let attr = raw.trim();
            if attr.is_empty() || !attr.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(TextError::BadQuery(format!("bad attribute {attr:?}")));
            }
            let id = *attr_ids.entry(attr.to_string()).or_insert_with(|| {
                attr_names.push(attr.to_string());
                attr_names.len() - 1
            });
            positions.push(id);
        }
        atoms.push((name.to_string(), positions));
        rest = rest[close + 1..]
            .trim()
            .trim_start_matches([',', '⋈'])
            .trim();
    }
    if atoms.is_empty() {
        return Err(TextError::BadQuery("no atoms".to_string()));
    }
    let mut query = Query::new(attr_names.len());
    for (name, positions) in atoms {
        let rel = db
            .id_of(&name)
            .map_err(|_| TextError::UnknownRelation(name.clone()))?;
        let arity = db.relation(rel).arity();
        if arity != positions.len() {
            return Err(TextError::AtomArity {
                relation: name,
                atom: positions.len(),
                relation_arity: arity,
            });
        }
        // Atom attribute lists must be strictly increasing in the GAO; the
        // planner (execute) re-indexes, so here we only need the atom's
        // positions sorted with the relation columns permuted accordingly —
        // delegate that to reindexing by sorting positions and permuting at
        // load time is NOT possible (columns are fixed). Instead, require
        // the query to be written consistently and report otherwise.
        if !positions.windows(2).all(|w| w[0] < w[1]) {
            return Err(TextError::BadQuery(format!(
                "atom over {} lists attributes out of GAO order; write attributes in \
                 first-appearance order or reorder the query",
                db.relation(rel).name()
            )));
        }
        query.atoms.push(minesweeper_core::Atom {
            rel,
            attrs: positions,
        });
    }
    Ok(ParsedQuery { attr_names, query })
}

/// Renders a [`Plan`] with the caller's relation and attribute names — the
/// CLI's `--explain` output. `attr_names[i]` names GAO position `i` of the
/// *original* numbering (as produced by [`parse_query`]).
pub fn render_plan(db: &Database, plan: &Plan, attr_names: &[String]) -> String {
    let name_of = |a: usize| -> &str { attr_names.get(a).map(String::as_str).unwrap_or("?") };
    let atoms: Vec<String> = plan
        .query()
        .atoms
        .iter()
        .map(|atom| {
            let attrs: Vec<&str> = atom.attrs.iter().map(|&a| name_of(a)).collect();
            format!("{}({})", db.relation(atom.rel).name(), attrs.join(", "))
        })
        .collect();
    let order: Vec<&str> = plan.gao().order.iter().map(|&a| name_of(a)).collect();
    let reindex = if plan.is_reindexed() {
        "re-indexed copies built at execution"
    } else {
        "stored indexes used directly"
    };
    format!(
        "query: {}\ngao: {}  ({reindex})\n{}",
        atoms.join(" ⋈ "),
        order.join(", "),
        plan.explain()
            .lines()
            .filter(|l| {
                // Names replace the positional forms rendered by
                // `Plan::explain`.
                !l.starts_with("atoms (GAO positions)")
                    && !l.starts_with("gao order")
                    && !l.starts_with("indexes:")
            })
            .collect::<Vec<_>>()
            .join("\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::execute;

    #[test]
    fn parse_relation_basic() {
        let r = parse_relation("R", "1 2\n2 3 # comment\n\n# full comment\n2 3\n").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[2, 3]));
    }

    #[test]
    fn parse_relation_errors() {
        assert!(matches!(
            parse_relation("R", "1 x\n"),
            Err(TextError::BadTuple { line: 1, .. })
        ));
        assert!(matches!(
            parse_relation("R", "1 2\n3\n"),
            Err(TextError::InconsistentArity {
                line: 2,
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            parse_relation("R", "# none\n"),
            Err(TextError::EmptyRelation)
        ));
    }

    #[test]
    fn parse_query_end_to_end() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1 10\n2 20\n").unwrap())
            .unwrap();
        db.add(parse_relation("S", "10 5\n20 9\n").unwrap())
            .unwrap();
        let pq = parse_query("R(x, y), S(y, z)", &db).unwrap();
        assert_eq!(pq.attr_names, vec!["x", "y", "z"]);
        let exec = execute(&db, &pq.query).unwrap();
        assert_eq!(exec.result.tuples, vec![vec![1, 10, 5], vec![2, 20, 9]]);
    }

    #[test]
    fn parse_query_with_join_symbol_and_unaries() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1\n2\n").unwrap()).unwrap();
        db.add(parse_relation("S", "1 5\n3 6\n").unwrap()).unwrap();
        db.add(parse_relation("T", "5\n6\n").unwrap()).unwrap();
        let pq = parse_query("R(x) ⋈ S(x, y) ⋈ T(y)", &db).unwrap();
        let exec = execute(&db, &pq.query).unwrap();
        assert_eq!(exec.result.tuples, vec![vec![1, 5]]);
    }

    #[test]
    fn parse_query_errors() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1 2\n").unwrap()).unwrap();
        assert!(matches!(
            parse_query("Q(x, y)", &db),
            Err(TextError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse_query("R(x)", &db),
            Err(TextError::AtomArity { .. })
        ));
        assert!(matches!(parse_query("", &db), Err(TextError::BadQuery(_))));
        assert!(matches!(
            parse_query("R(x y)", &db),
            Err(TextError::BadQuery(_))
        ));
        // Out-of-GAO attribute order in a later atom is reported.
        db.add(parse_relation("S", "1 2\n").unwrap()).unwrap();
        assert!(matches!(
            parse_query("R(x, y), S(y, x)", &db),
            Err(TextError::BadQuery(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = TextError::BadTuple {
            line: 3,
            token: "q".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(TextError::EmptyRelation.to_string().contains("no tuples"));
    }

    #[test]
    fn render_plan_uses_names() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1 10\n").unwrap()).unwrap();
        db.add(parse_relation("S", "10 5\n").unwrap()).unwrap();
        let pq = parse_query("R(x, y), S(y, z)", &db).unwrap();
        let plan = minesweeper_core::plan(&db, &pq.query).unwrap();
        let text = render_plan(&db, &plan, &pq.attr_names);
        assert!(text.contains("R(x, y) ⋈ S(y, z)"), "{text}");
        assert!(text.contains("probe mode"), "{text}");
        assert!(text.contains("runtime bound"), "{text}");
        // GAO line shows names, not positions.
        assert!(text.lines().any(|l| l.starts_with("gao: ")), "{text}");
    }
}
