//! Plain-text relation loading and a minimal query syntax, for the `msj`
//! command-line tool and for embedding in tests/scripts.
//!
//! ## Relation files
//!
//! One tuple per line, columns separated by whitespace, `#` comments and
//! blank lines ignored:
//!
//! ```text
//! # edge list
//! 1   2
//! 2   3
//! ```
//!
//! Columns may hold strings: [`parse_typed_relation`] infers each column's
//! [`ColumnType`] (a column where every token parses as an integer stays
//! `Int`; any other column is `Str`), and the [`crate::engine::Engine`]
//! interns the string cells through its dictionary. The older
//! [`parse_relation`] keeps the integer-only contract. Because cells are
//! whitespace-separated and `#` starts a comment, **string cells cannot
//! contain whitespace or `#`** — there is no quoting or escaping in the
//! relation file format (load such data programmatically via
//! [`crate::engine::Engine::add_relation`] instead).
//!
//! ## Query syntax
//!
//! A query is a `⋈`- or `,`-separated list of atoms `Name(Attr, …)`;
//! attribute names are arbitrary identifiers, and the **global attribute
//! order is the order of first appearance** (so write the query in the
//! GAO you want, or let the planner re-index):
//!
//! ```text
//! R(x, y), S(y, z), T(z)
//! ```
//!
//! Atom arguments may also be literals — double-quoted strings or bare
//! integers — which constrain that position to a constant:
//!
//! ```text
//! Flights(origin, dest), Cities(dest, "north-america")
//! ```
//!
//! Literals are resolved by the [`crate::engine::Engine`] front door
//! (which owns the dictionary a string literal must be interned through);
//! the database-level [`parse_query`] used by embedded integer-only
//! callers reports them as unsupported.

use std::collections::BTreeMap;
use std::fmt;

use minesweeper_core::{Plan, Query};
use minesweeper_storage::{
    ColumnType, Database, RelationBuilder, StorageError, TrieRelation, Val, Value,
};

/// Errors from parsing relation files or query strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// A tuple line failed to parse.
    BadTuple {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// Tuple lines had inconsistent arity.
    InconsistentArity {
        /// 1-based line number.
        line: usize,
        /// Arity of the first tuple.
        expected: usize,
        /// Arity found on this line.
        got: usize,
    },
    /// The relation file had no tuples (arity cannot be inferred).
    EmptyRelation,
    /// The query string failed to parse.
    BadQuery(String),
    /// An atom referenced a relation not loaded into the database.
    UnknownRelation(String),
    /// An atom's attribute count does not match its relation's arity.
    AtomArity {
        /// Relation name.
        relation: String,
        /// Attribute count in the atom.
        atom: usize,
        /// Column count of the relation.
        relation_arity: usize,
    },
    /// Storage-level failure while building the relation.
    Storage(String),
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::BadTuple { line, token } => {
                write!(f, "line {line}: cannot parse value {token:?}")
            }
            TextError::InconsistentArity { line, expected, got } => {
                write!(f, "line {line}: expected {expected} columns, found {got}")
            }
            TextError::EmptyRelation => write!(f, "relation file contains no tuples"),
            TextError::BadQuery(msg) => write!(f, "query syntax error: {msg}"),
            TextError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            TextError::AtomArity { relation, atom, relation_arity } => write!(
                f,
                "atom over {relation} has {atom} attributes but the relation has arity {relation_arity}"
            ),
            TextError::Storage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<StorageError> for TextError {
    fn from(e: StorageError) -> Self {
        TextError::Storage(e.to_string())
    }
}

/// Parses a whitespace-separated **integer** tuple file into a relation.
/// Arity is inferred from the first tuple line. For files with string
/// columns, load through [`parse_typed_relation`] +
/// [`crate::engine::Engine::add_relation`] instead.
pub fn parse_relation(name: &str, text: &str) -> Result<TrieRelation, TextError> {
    let mut builder: Option<RelationBuilder> = None;
    let mut arity = 0usize;
    let mut row: Vec<Val> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        row.clear();
        for token in line.split_whitespace() {
            let v: Val = token.parse().map_err(|_| TextError::BadTuple {
                line: i + 1,
                token: token.to_string(),
            })?;
            row.push(v);
        }
        match &mut builder {
            None => {
                arity = row.len();
                let mut b = RelationBuilder::new(name, arity);
                b.push(&row);
                builder = Some(b);
            }
            Some(b) => {
                if row.len() != arity {
                    return Err(TextError::InconsistentArity {
                        line: i + 1,
                        expected: arity,
                        got: row.len(),
                    });
                }
                b.push(&row);
            }
        }
    }
    let builder = builder.ok_or(TextError::EmptyRelation)?;
    Ok(builder.build()?)
}

/// A relation parsed with per-column type inference, ready for
/// [`crate::engine::Engine::add_relation`].
#[derive(Debug, Clone)]
pub struct TypedRelation {
    /// Relation name.
    pub name: String,
    /// Inferred column types: `Int` when every cell of the column parses
    /// as an integer, `Str` otherwise.
    pub types: Vec<ColumnType>,
    /// The rows, cell-typed according to `types`.
    pub rows: Vec<Vec<Value>>,
}

/// Parses a whitespace-separated tuple file, inferring each column's
/// type. Integer-only files produce exactly the same `Int` cells
/// [`parse_relation`] would, so loading them through an engine is
/// byte-compatible with the untyped path.
pub fn parse_typed_relation(name: &str, text: &str) -> Result<TypedRelation, TextError> {
    let mut raw: Vec<Vec<String>> = Vec::new();
    let mut arity = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let row: Vec<String> = line.split_whitespace().map(str::to_string).collect();
        if raw.is_empty() {
            arity = row.len();
        } else if row.len() != arity {
            return Err(TextError::InconsistentArity {
                line: i + 1,
                expected: arity,
                got: row.len(),
            });
        }
        raw.push(row);
    }
    if raw.is_empty() {
        return Err(TextError::EmptyRelation);
    }
    let types: Vec<ColumnType> = (0..arity)
        .map(|c| {
            if raw.iter().all(|r| r[c].parse::<Val>().is_ok()) {
                ColumnType::Int
            } else {
                ColumnType::Str
            }
        })
        .collect();
    let rows = raw
        .into_iter()
        .map(|r| {
            r.into_iter()
                .zip(&types)
                .map(|(cell, ty)| match ty {
                    ColumnType::Int => Value::Int(cell.parse().expect("column inferred Int")),
                    ColumnType::Str => Value::Str(cell),
                })
                .collect()
        })
        .collect();
    Ok(TypedRelation {
        name: name.to_string(),
        types,
        rows,
    })
}

/// One argument of a parsed query atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryArg {
    /// A named attribute.
    Var(String),
    /// A double-quoted string literal (constrains the position to a
    /// constant; resolved by the engine's dictionary).
    StrLit(String),
    /// A bare integer literal.
    IntLit(Val),
}

/// One atom of the raw query syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAtomAst {
    /// The relation name.
    pub relation: String,
    /// The atom's arguments in written order.
    pub args: Vec<QueryArg>,
}

/// Parses query text into its syntax tree without resolving anything
/// against a database: `R(x, y), S(y, "nyc") ⋈ T(7, z)` becomes three
/// [`QueryAtomAst`]s. The engine front door builds executable queries
/// from this (interning literals); [`parse_query`] is the
/// integer-variable-only wrapper.
pub fn parse_query_ast(text: &str) -> Result<Vec<QueryAtomAst>, TextError> {
    let mut atoms = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let open = rest
            .find('(')
            .ok_or_else(|| TextError::BadQuery(format!("expected '(' in {rest:?}")))?;
        let name = rest[..open].trim().trim_start_matches([',', '⋈']).trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(TextError::BadQuery(format!("bad relation name {name:?}")));
        }
        // Scan for the matching ')' respecting double-quoted literals, so
        // `R(x, "a,b)")` parses.
        let mut close = None;
        let mut in_quote = false;
        for (off, c) in rest[open + 1..].char_indices() {
            match c {
                '"' => in_quote = !in_quote,
                ')' if !in_quote => {
                    close = Some(open + 1 + off);
                    break;
                }
                _ => {}
            }
        }
        let close = close.ok_or_else(|| {
            TextError::BadQuery(if in_quote {
                "unterminated string literal".to_string()
            } else {
                "unbalanced parentheses".to_string()
            })
        })?;
        let args_text = &rest[open + 1..close];
        let mut args = Vec::new();
        for raw in split_args(args_text) {
            let raw = raw.trim();
            if let Some(body) = raw
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .filter(|_| raw.len() >= 2)
            {
                if body.contains('"') {
                    return Err(TextError::BadQuery(format!("bad string literal {raw:?}")));
                }
                args.push(QueryArg::StrLit(body.to_string()));
            } else if let Ok(v) = raw.parse::<Val>() {
                args.push(QueryArg::IntLit(v));
            } else if !raw.is_empty() && raw.chars().all(|c| c.is_alphanumeric() || c == '_') {
                args.push(QueryArg::Var(raw.to_string()));
            } else {
                return Err(TextError::BadQuery(format!("bad attribute {raw:?}")));
            }
        }
        atoms.push(QueryAtomAst {
            relation: name.to_string(),
            args,
        });
        rest = rest[close + 1..]
            .trim()
            .trim_start_matches([',', '⋈'])
            .trim();
    }
    if atoms.is_empty() {
        return Err(TextError::BadQuery("no atoms".to_string()));
    }
    Ok(atoms)
}

/// Splits an atom's argument text on commas that are outside quotes.
fn split_args(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            ',' if !in_quote => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// A parsed query: the attribute names in GAO (first-appearance) order and
/// the query over a database.
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// Attribute names; index = GAO position.
    pub attr_names: Vec<String>,
    /// The query, with atoms bound to `db`'s relations.
    pub query: Query,
}

/// Assigns GAO positions to attribute *slots* (variables, and — in the
/// engine — literal occurrences), numbered `0..n_slots` in
/// first-appearance order, such that every atom's slot sequence is
/// strictly increasing in the returned positions. Queries written in a
/// usable order keep exactly their first-appearance numbering (the
/// greedy topological sort prefers lower slot numbers); queries whose
/// atoms order the same pair of attributes both ways have no consistent
/// GAO and are rejected. Returns `pos[slot]` = GAO position.
pub(crate) fn assign_gao_positions(
    n_slots: usize,
    atoms: &[(String, Vec<usize>)],
) -> Result<Vec<usize>, TextError> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_slots];
    let mut indegree = vec![0usize; n_slots];
    for (rel, slots) in atoms {
        for w in slots.windows(2) {
            if w[0] == w[1] {
                return Err(TextError::BadQuery(format!(
                    "atom over {rel} repeats an attribute in adjacent positions"
                )));
            }
            adj[w[0]].push(w[1]);
            indegree[w[1]] += 1;
        }
    }
    // Kahn's algorithm, always taking the lowest-numbered ready slot so a
    // feasible first-appearance order is reproduced verbatim.
    let mut ready: std::collections::BTreeSet<usize> =
        (0..n_slots).filter(|&v| indegree[v] == 0).collect();
    let mut pos = vec![usize::MAX; n_slots];
    let mut next = 0usize;
    while let Some(&v) = ready.iter().next() {
        ready.remove(&v);
        pos[v] = next;
        next += 1;
        for &w in &adj[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                ready.insert(w);
            }
        }
    }
    if next != n_slots {
        return Err(TextError::BadQuery(
            "no GAO order is consistent with the atoms' attribute sequences \
             (two atoms order the same attributes both ways); reorder the query"
                .to_string(),
        ));
    }
    Ok(pos)
}

/// Parses `R(x, y), S(y, z)`-style query text against a database. The GAO
/// is the order of first appearance of each attribute name whenever that
/// order is consistent with every atom; otherwise the closest consistent
/// reordering is chosen (and truly conflicting queries are rejected).
/// Literal arguments (string or integer constants) are reported as errors
/// here — they need the engine front door, which owns the dictionary and
/// the constant-binding relations.
pub fn parse_query(text: &str, db: &Database) -> Result<ParsedQuery, TextError> {
    let ast = parse_query_ast(text)?;
    let mut attr_ids: BTreeMap<String, usize> = BTreeMap::new();
    let mut slot_names: Vec<String> = Vec::new();
    let mut atoms: Vec<(String, Vec<usize>)> = Vec::new();
    for atom in ast {
        let mut positions = Vec::new();
        for arg in atom.args {
            let attr = match arg {
                QueryArg::Var(v) => v,
                QueryArg::StrLit(_) | QueryArg::IntLit(_) => {
                    return Err(TextError::BadQuery(
                        "literal arguments are only supported through the Engine \
                         (use minesweeper_join::engine::Engine::prepare)"
                            .to_string(),
                    ))
                }
            };
            let id = *attr_ids.entry(attr.clone()).or_insert_with(|| {
                slot_names.push(attr.clone());
                slot_names.len() - 1
            });
            positions.push(id);
        }
        atoms.push((atom.relation, positions));
    }
    let pos = assign_gao_positions(slot_names.len(), &atoms)?;
    let mut attr_names = vec![String::new(); slot_names.len()];
    for (slot, name) in slot_names.into_iter().enumerate() {
        attr_names[pos[slot]] = name;
    }
    let mut query = Query::new(attr_names.len());
    for (name, positions) in atoms {
        let rel = db
            .id_of(&name)
            .map_err(|_| TextError::UnknownRelation(name.clone()))?;
        let arity = db.relation(rel).arity();
        if arity != positions.len() {
            return Err(TextError::AtomArity {
                relation: name,
                atom: positions.len(),
                relation_arity: arity,
            });
        }
        query.atoms.push(minesweeper_core::Atom {
            rel,
            attrs: positions.iter().map(|&s| pos[s]).collect(),
        });
    }
    Ok(ParsedQuery { attr_names, query })
}

/// Renders a [`Plan`] with the caller's relation and attribute names — the
/// CLI's `--explain` output, built by filling names into the structured
/// [`minesweeper_core::ExplainPlan`] and rendering it. `attr_names[i]`
/// names GAO position `i` of the *original* numbering (as produced by
/// [`parse_query`]).
pub fn render_plan(db: &Database, plan: &Plan, attr_names: &[String]) -> String {
    named_explain_plan(db, plan, attr_names).render()
}

/// The structured form behind [`render_plan`]: the plan's
/// [`minesweeper_core::ExplainPlan`] with relation and attribute names
/// filled in from the caller's catalog.
pub fn named_explain_plan(
    db: &Database,
    plan: &Plan,
    attr_names: &[String],
) -> minesweeper_core::ExplainPlan {
    let mut ep = plan.explain_plan();
    ep.attr_names = Some(attr_names.to_vec());
    for (atom, ea) in plan.query().atoms.iter().zip(ep.atoms.iter_mut()) {
        ea.relation = Some(db.relation(atom.rel).name().to_string());
    }
    ep
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper_core::execute;

    #[test]
    fn parse_relation_basic() {
        let r = parse_relation("R", "1 2\n2 3 # comment\n\n# full comment\n2 3\n").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[2, 3]));
    }

    #[test]
    fn parse_relation_errors() {
        assert!(matches!(
            parse_relation("R", "1 x\n"),
            Err(TextError::BadTuple { line: 1, .. })
        ));
        assert!(matches!(
            parse_relation("R", "1 2\n3\n"),
            Err(TextError::InconsistentArity {
                line: 2,
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            parse_relation("R", "# none\n"),
            Err(TextError::EmptyRelation)
        ));
    }

    #[test]
    fn typed_relation_infers_columns() {
        let t = parse_typed_relation("Cities", "nyc 1\nsf 2\n# c\nla 3\n").unwrap();
        assert_eq!(t.types, vec![ColumnType::Str, ColumnType::Int]);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0], vec![Value::Str("nyc".into()), Value::Int(1)]);
        // All-integer columns stay Int even when another column is Str.
        let t = parse_typed_relation("R", "1 2\n3 4\n").unwrap();
        assert_eq!(t.types, vec![ColumnType::Int, ColumnType::Int]);
        assert_eq!(t.rows[1], vec![Value::Int(3), Value::Int(4)]);
        // A single non-numeric cell flips the whole column to Str.
        let t = parse_typed_relation("R", "1 2\nx 4\n").unwrap();
        assert_eq!(t.types, vec![ColumnType::Str, ColumnType::Int]);
        assert_eq!(t.rows[0][0], Value::Str("1".into()));
    }

    #[test]
    fn typed_relation_errors() {
        assert!(matches!(
            parse_typed_relation("R", ""),
            Err(TextError::EmptyRelation)
        ));
        assert!(matches!(
            parse_typed_relation("R", "1 2\n3\n"),
            Err(TextError::InconsistentArity { line: 2, .. })
        ));
    }

    #[test]
    fn ast_parses_vars_and_literals() {
        let ast = parse_query_ast("R(x, \"new york\"), S(x, 7) ⋈ T(y_2)").unwrap();
        assert_eq!(ast.len(), 3);
        assert_eq!(ast[0].relation, "R");
        assert_eq!(
            ast[0].args,
            vec![
                QueryArg::Var("x".into()),
                QueryArg::StrLit("new york".into())
            ]
        );
        assert_eq!(
            ast[1].args,
            vec![QueryArg::Var("x".into()), QueryArg::IntLit(7)]
        );
        assert_eq!(ast[2].args, vec![QueryArg::Var("y_2".into())]);
    }

    #[test]
    fn ast_literal_edge_cases() {
        // Commas and parens inside quotes don't split or close.
        let ast = parse_query_ast("R(x, \"a,b)\")").unwrap();
        assert_eq!(ast[0].args[1], QueryArg::StrLit("a,b)".into()));
        // Negative integers are literals, not variables.
        let ast = parse_query_ast("R(-3)").unwrap();
        assert_eq!(ast[0].args, vec![QueryArg::IntLit(-3)]);
        assert!(matches!(
            parse_query_ast("R(\"open"),
            Err(TextError::BadQuery(msg)) if msg.contains("unterminated")
        ));
        assert!(parse_query_ast("R(x y)").is_err(), "space-separated args");
        assert!(parse_query_ast("").is_err(), "no atoms");
    }

    #[test]
    fn parse_query_end_to_end() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1 10\n2 20\n").unwrap())
            .unwrap();
        db.add(parse_relation("S", "10 5\n20 9\n").unwrap())
            .unwrap();
        let pq = parse_query("R(x, y), S(y, z)", &db).unwrap();
        assert_eq!(pq.attr_names, vec!["x", "y", "z"]);
        let exec = execute(&db, &pq.query).unwrap();
        assert_eq!(exec.result.tuples, vec![vec![1, 10, 5], vec![2, 20, 9]]);
    }

    #[test]
    fn parse_query_with_join_symbol_and_unaries() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1\n2\n").unwrap()).unwrap();
        db.add(parse_relation("S", "1 5\n3 6\n").unwrap()).unwrap();
        db.add(parse_relation("T", "5\n6\n").unwrap()).unwrap();
        let pq = parse_query("R(x) ⋈ S(x, y) ⋈ T(y)", &db).unwrap();
        let exec = execute(&db, &pq.query).unwrap();
        assert_eq!(exec.result.tuples, vec![vec![1, 5]]);
    }

    #[test]
    fn parse_query_errors() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1 2\n").unwrap()).unwrap();
        assert!(matches!(
            parse_query("Q(x, y)", &db),
            Err(TextError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse_query("R(x)", &db),
            Err(TextError::AtomArity { .. })
        ));
        assert!(matches!(parse_query("", &db), Err(TextError::BadQuery(_))));
        assert!(matches!(
            parse_query("R(x y)", &db),
            Err(TextError::BadQuery(_))
        ));
        // Out-of-GAO attribute order in a later atom is reported.
        db.add(parse_relation("S", "1 2\n").unwrap()).unwrap();
        assert!(matches!(
            parse_query("R(x, y), S(y, x)", &db),
            Err(TextError::BadQuery(_))
        ));
        // Literals are an engine-level feature.
        assert!(matches!(
            parse_query("R(x, \"lit\")", &db),
            Err(TextError::BadQuery(msg)) if msg.contains("Engine")
        ));
        assert!(matches!(
            parse_query("R(x, 7)", &db),
            Err(TextError::BadQuery(msg)) if msg.contains("Engine")
        ));
    }

    #[test]
    fn parse_query_malformed_atoms() {
        let db = Database::new();
        for bad in [
            "R x, y)",  // missing '('
            "R(x, y",   // missing ')'
            "(x)",      // empty relation name
            "R-Q(x)",   // bad relation character
            "R(x, y%)", // bad attribute character
            "R()",      // empty argument
        ] {
            let got = parse_query(bad, &db);
            assert!(
                matches!(got, Err(TextError::BadQuery(_))),
                "{bad:?} must be a syntax error, got {got:?}"
            );
        }
    }

    #[test]
    fn error_display() {
        let e = TextError::BadTuple {
            line: 3,
            token: "q".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(TextError::EmptyRelation.to_string().contains("no tuples"));
        assert!(TextError::AtomArity {
            relation: "R".into(),
            atom: 1,
            relation_arity: 2
        }
        .to_string()
        .contains("arity 2"));
        assert!(TextError::UnknownRelation("Q".into())
            .to_string()
            .contains("unknown relation Q"));
    }

    #[test]
    fn render_plan_uses_names() {
        let mut db = Database::new();
        db.add(parse_relation("R", "1 10\n").unwrap()).unwrap();
        db.add(parse_relation("S", "10 5\n").unwrap()).unwrap();
        let pq = parse_query("R(x, y), S(y, z)", &db).unwrap();
        let plan = minesweeper_core::plan(&db, &pq.query).unwrap();
        let text = render_plan(&db, &plan, &pq.attr_names);
        assert!(text.contains("R(x, y) ⋈ S(y, z)"), "{text}");
        assert!(text.contains("probe mode"), "{text}");
        assert!(text.contains("runtime bound"), "{text}");
        // GAO line shows names, not positions.
        assert!(text.lines().any(|l| l.starts_with("gao: ")), "{text}");
        // The structured form carries the same names.
        let ep = named_explain_plan(&db, &plan, &pq.attr_names);
        assert_eq!(ep.atoms[0].relation.as_deref(), Some("R"));
        assert!(ep.to_json().contains("\"attr_names\":[\"x\",\"y\",\"z\"]"));
    }
}
