//! `msj` — run a join from the command line, serve joins over TCP, or
//! talk to a running server.
//!
//! ```text
//! msj --rel R=edges.tsv --rel S=edges.tsv 'R(x, y), S(y, z)' \
//!     [--algo NAME] [--explain] [--explain-json] [--stats] [--limit K] \
//!     [--threads N] [--data-dir DIR]
//! msj serve  --rel NAME=FILE ... [--addr 127.0.0.1:PORT] [--budget N] \
//!     [--default-timeout MS] [--flush-rows N] [--flush-bytes N] \
//!     [--data-dir DIR] [--fsync always|never|every=N] \
//!     [--checkpoint-every N] [--no-auto-compact]
//! msj client --addr 127.0.0.1:PORT
//! ```
//!
//! Relations are whitespace-separated tuple files (see
//! `minesweeper_join::text`); columns may hold integers or strings —
//! string columns are dictionary-encoded by the engine and decoded on
//! output. The query lists atoms with named attributes whose
//! first-appearance order is the GAO; arguments may also be literals
//! (`Cities(c, "north-america")`, `R(x, 7)`) that constrain a position to
//! a constant. The planner picks a nested elimination order when the
//! query is β-acyclic and falls back to a minimum-elimination-width order
//! otherwise.
//!
//! Everything runs through the `Engine` front door: the query is
//! prepared once (plan + any GAO re-indexing, cached by query shape) and
//! each evaluator dispatches through the same `PreparedStatement` path.
//!
//! * `--explain` prints the plan (GAO, probe mode, width, runtime bound,
//!   cache status) without executing; `--explain-json` prints the same
//!   structured `ExplainPlan` as JSON.
//! * `--algo NAME` dispatches through the algorithm registry
//!   (`minesweeper`, `minesweeper-par`, `yannakakis`, `leapfrog`,
//!   `generic`, `hash`, `sort-merge`, `nested-loop`, `naive`); every
//!   algorithm prints the same sorted output.
//! * `--limit K` with the default Minesweeper engine is pushed into the
//!   streaming executor: the probe loop stops after `K` certified tuples
//!   instead of materializing the whole result.
//! * `--threads N` (or `--algo minesweeper-par`) runs the sharded
//!   parallel engine — equi-depth shard tasks on a work-stealing deque,
//!   reassembled by a global-order k-way heap merge, byte-identical to
//!   the serial engine (`--limit` streams included, cancelling remaining
//!   shard work early). `--stats` adds the per-shard breakdown.
//!
//! **`msj serve`** loads the same `--rel` relations once, then serves
//! the line protocol documented in `docs/SERVICE.md` on `--addr`
//! (default `127.0.0.1:0`; the chosen address is printed as the first
//! stdout line, `listening on HOST:PORT`). Each request line carries
//! per-request options (`Q algo=… threads=… limit=… timeout=… explain …`),
//! hot shapes can be `PREPARE`d once and `EXEC`d by name, all
//! connections share one engine (and so one plan/re-index cache), and a
//! global `--budget` of pool workers (default: the CPU count) bounds
//! concurrent execution. `--default-timeout MS` arms a server-wide
//! deadline for requests that do not carry their own `timeout=`;
//! `--flush-rows` / `--flush-bytes` tune the response batching
//! watermarks. **`msj client`** sends each stdin line as a
//! request and prints response bodies to stdout — byte-identical to
//! what the one-shot CLI prints for the same query and options.
//!
//! **`--data-dir DIR`** makes the engine durable (see
//! `docs/DURABILITY.md`): a first boot loads the `--rel` relations,
//! writes the boot checkpoint, and logs every committed write batch to a
//! write-ahead log before applying it; a later boot recovers — newest
//! valid checkpoint, then WAL-tail replay, tolerating a torn final line
//! — and ignores `--rel` (the directory is the source of truth).
//! `--fsync` picks the log's sync policy (default `always`),
//! `--checkpoint-every N` checkpoints every `N` logged records
//! (`W CHECKPOINT` forces one any time), and `--no-auto-compact` turns
//! off threshold-triggered compaction after writes. `msj serve` drains
//! on SIGTERM/SIGINT: it stops accepting, lets in-flight sessions
//! finish, writes a final checkpoint, and exits 0.
//!
//! Exit codes: `0` success, `2` usage, `3` the query was rejected
//! (parse/plan/type/unknown-algorithm — before any tuple work), `1`
//! execution or I/O failure.

use std::process::ExitCode;

use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

use minesweeper_join::baselines::{algorithm_names, lookup};
use minesweeper_join::durability::{DurabilityOptions, FsyncPolicy};
use minesweeper_join::engine::{
    DispatchKind, DurableBoot, Engine, EngineError, ExecOptions, PreparedStatement,
};
use minesweeper_join::render;
use minesweeper_join::server::{self, Client, Reply, Server};
use minesweeper_join::storage::ExecStats;

/// Exit code for queries the engine rejected before doing tuple work.
const EXIT_REJECTED: u8 = 3;

fn usage() -> ExitCode {
    eprintln!(
        "usage: msj --rel NAME=FILE [--rel NAME=FILE ...] 'QUERY' \
         [--algo NAME] [--explain] [--explain-json] [--stats] [--limit K] [--threads N] \
         [--data-dir DIR]\n\
         \x20      msj serve --rel NAME=FILE [...] [--addr HOST:PORT] [--budget N]\n\
         \x20                [--default-timeout MS] [--flush-rows N] [--flush-bytes N]\n\
         \x20                [--data-dir DIR] [--fsync always|never|every=N]\n\
         \x20                [--checkpoint-every N] [--no-auto-compact]\n\
         \x20      msj client --addr HOST:PORT  (requests on stdin; see docs/SERVICE.md)\n\
         example: msj --rel R=edges.tsv --rel S=edges.tsv 'R(x,y), S(y,z)' --stats\n\
         algorithms: {}",
        algorithm_names().join(", ")
    );
    ExitCode::from(2)
}

/// Reports an engine error and maps it onto the exit-code policy:
/// rejected queries (nothing executed) exit 3, execution failures 1.
fn engine_failure(e: &EngineError) -> ExitCode {
    eprintln!("{e}");
    if e.is_query_rejection() {
        ExitCode::from(EXIT_REJECTED)
    } else {
        ExitCode::FAILURE
    }
}

fn print_stats(stats: &ExecStats) {
    eprintln!("# outputs: {}", stats.outputs);
    eprintln!(
        "# findgap calls (certificate proxy): {}",
        stats.find_gap_calls
    );
    eprintln!("# probe points: {}", stats.probe_points);
    eprintln!("# constraints inserted: {}", stats.constraints_inserted);
    eprintln!("# backtracks: {}", stats.backtracks);
    eprintln!("# comparisons: {}", stats.comparisons);
    eprintln!("# intermediate tuples: {}", stats.intermediate_tuples);
}

fn print_gao_line(stmt: &PreparedStatement) {
    let gao = stmt.plan().gao();
    eprintln!(
        "# gao order: {:?} (mode {:?}, width {})",
        gao.order, gao.mode, gao.width
    );
}

/// The per-shard breakdown of a parallel run: one line per shard task
/// with its output-space slice and counters, flagged when the task was
/// stolen by an idle worker or cancelled before completing.
fn print_shard_lines(threads: usize, shards: &[minesweeper_join::core::ShardStats]) {
    eprintln!(
        "# parallel: {} worker(s), {} shard task(s)",
        threads,
        shards.len()
    );
    for (i, s) in shards.iter().enumerate() {
        eprintln!(
            "#   shard {i} {}: outputs={} findgap={} probes={}{}{}",
            s.spec,
            s.stats.outputs,
            s.stats.find_gap_calls,
            s.stats.probe_points,
            if s.stolen { " (stolen)" } else { "" },
            if s.completed {
                ""
            } else {
                " (cancelled/capped)"
            },
        );
    }
}

/// Loads `--rel NAME=FILE` pairs into an engine (fresh or just-opened
/// durable — the same loader either way).
fn load_relations_into(engine: &mut Engine, rels: &[(String, String)]) -> Result<(), ExitCode> {
    for (name, path) in rels {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        })?;
        engine.load_tsv(name, &text).map_err(|e| {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        })?;
    }
    Ok(())
}

/// Parses the `--rel NAME=FILE` pairs common to the one-shot and serve
/// modes and loads them into a fresh in-memory engine.
fn load_relations(rels: &[(String, String)]) -> Result<Engine, ExitCode> {
    let mut engine = Engine::new();
    load_relations_into(&mut engine, rels)?;
    Ok(engine)
}

/// Opens (or recovers) a durable engine over `--data-dir`. A fresh
/// directory loads the `--rel` relations and writes the boot checkpoint;
/// a recovered one ignores `--rel` with a warning and reports what
/// recovery did on stderr.
fn open_data_dir(
    dir: &str,
    options: DurabilityOptions,
    rels: &[(String, String)],
) -> Result<Engine, ExitCode> {
    let (mut engine, boot) = Engine::open_durable(Path::new(dir), options).map_err(|e| {
        eprintln!("cannot open data directory {dir}: {e}");
        ExitCode::FAILURE
    })?;
    match boot {
        DurableBoot::Fresh => {
            load_relations_into(&mut engine, rels)?;
            match engine.checkpoint() {
                Ok(Some(report)) => eprintln!(
                    "# msj: initialized {dir}: checkpoint {} ({} relation(s), {} row(s))",
                    report.id, report.relations, report.rows
                ),
                Ok(None) => unreachable!("durable engines always checkpoint"),
                Err(e) => {
                    eprintln!("cannot write the boot checkpoint in {dir}: {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        DurableBoot::Recovered(report) => {
            for warning in &report.warnings {
                eprintln!("# msj: recovery warning: {warning}");
            }
            eprintln!(
                "# msj: recovered {dir}: checkpoint {} + {} replayed wal record(s), \
                 {} relation(s)",
                report.checkpoint_id, report.replayed_records, report.relations
            );
            if !rels.is_empty() {
                eprintln!(
                    "# msj: note: {} --rel argument(s) ignored — {dir} already holds the data",
                    rels.len()
                );
            }
        }
    }
    Ok(engine)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("client") => client_main(&args[1..]),
        _ => query_main(&args),
    }
}

// ---------------------------------------------------------------- serve

fn serve_main(args: &[String]) -> ExitCode {
    let mut rels: Vec<(String, String)> = Vec::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut options = server::ServerOptions::default();
    let mut data_dir: Option<String> = None;
    let mut durability = DurabilityOptions::default();
    let mut durability_flags = false;
    let mut auto_compact = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel" => {
                let Some(spec) = args.get(i + 1) else {
                    return usage();
                };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--rel expects NAME=FILE, got {spec:?}");
                    return ExitCode::from(2);
                };
                rels.push((name.to_string(), path.to_string()));
                i += 2;
            }
            "--addr" => {
                let Some(a) = args.get(i + 1) else {
                    return usage();
                };
                addr = a.clone();
                i += 2;
            }
            "--budget" => {
                let Some(b) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                options.budget = b;
                i += 2;
            }
            "--default-timeout" => {
                let Some(ms) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                options.default_timeout = Some(std::time::Duration::from_millis(ms));
                i += 2;
            }
            "--flush-rows" => {
                let parsed = args.get(i + 1).and_then(|s| s.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--flush-rows expects a positive line count");
                    return ExitCode::from(2);
                };
                options.flush_rows = n;
                i += 2;
            }
            "--flush-bytes" => {
                let parsed = args.get(i + 1).and_then(|s| s.parse::<usize>().ok());
                let Some(n) = parsed.filter(|&n| n > 0) else {
                    eprintln!("--flush-bytes expects a positive byte count");
                    return ExitCode::from(2);
                };
                options.flush_bytes = n;
                i += 2;
            }
            "--data-dir" => {
                let Some(d) = args.get(i + 1) else {
                    return usage();
                };
                data_dir = Some(d.clone());
                i += 2;
            }
            "--fsync" => {
                let Some(policy) = args.get(i + 1).and_then(|s| FsyncPolicy::parse(s)) else {
                    eprintln!("--fsync expects always, never, or every=N");
                    return ExitCode::from(2);
                };
                durability.fsync = policy;
                durability_flags = true;
                i += 2;
            }
            "--checkpoint-every" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                durability.checkpoint_every = n;
                durability_flags = true;
                i += 2;
            }
            "--no-auto-compact" => {
                auto_compact = false;
                i += 1;
            }
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if durability_flags && data_dir.is_none() {
        eprintln!("--fsync / --checkpoint-every require --data-dir");
        return ExitCode::from(2);
    }
    if rels.is_empty() && data_dir.is_none() {
        return usage();
    }
    let engine = match &data_dir {
        Some(dir) => match open_data_dir(dir, durability, &rels) {
            Ok(e) => e,
            Err(code) => return code,
        },
        None => match load_relations(&rels) {
            Ok(e) => e,
            Err(code) => return code,
        },
    };
    engine.set_auto_compact(auto_compact);
    let engine = Arc::new(engine);
    let server = match Server::start_with(Arc::clone(&engine), &addr, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The first stdout line is machine-readable so scripts (and the CI
    // smoke job) can discover an OS-assigned port.
    println!("listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "# msj serve: {} relation(s), worker budget {}{}; protocol in docs/SERVICE.md",
        engine.db().len(),
        server.stats().budget,
        match &data_dir {
            Some(dir) => format!(", durable in {dir}"),
            None => String::new(),
        }
    );
    // Serve until SIGTERM/SIGINT, then drain: stop accepting, let
    // in-flight sessions finish (they poll the shutdown flag between
    // reads, bounded by the 50ms read-poll), write a final checkpoint,
    // and exit 0. Sessions and the accept loop run on their own threads;
    // the main thread only watches the drain flag.
    sig::install();
    while !sig::draining() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("# msj serve: signal received, draining");
    if let Err(e) = server.shutdown() {
        eprintln!("msj serve: shutdown: {e}");
        return ExitCode::FAILURE;
    }
    match engine.checkpoint() {
        Ok(Some(report)) => eprintln!(
            "# msj serve: final checkpoint {} ({} relation(s), {} row(s))",
            report.id, report.relations, report.rows
        ),
        Ok(None) => {}
        Err(e) => {
            eprintln!("msj serve: final checkpoint failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Minimal signal handling without a libc crate: `std` already links
/// libc, so declaring `signal(2)` directly is enough to flip an atomic
/// from the handler (store-to-atomic is async-signal-safe).
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DRAIN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGINT, handler as usize);
            signal(SIGTERM, handler as usize);
        }
    }

    pub fn draining() -> bool {
        DRAIN.load(Ordering::SeqCst)
    }
}

/// Non-unix fallback: no drain signal; the process serves until killed.
#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn draining() -> bool {
        false
    }
}

// --------------------------------------------------------------- client

/// `ERR` codes that mean the request was rejected before execution —
/// they map onto exit 3 like the one-shot CLI's rejections.
fn code_is_rejection(code: &str) -> bool {
    matches!(code, "PROTO" | "PARSE" | "PLAN" | "TYPE" | "ALGO")
}

fn client_main(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                let Some(a) = args.get(i + 1) else {
                    return usage();
                };
                addr = Some(a.clone());
                i += 2;
            }
            "--help" | "-h" => return usage(),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        return usage();
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut rejected = false;
    let mut failed = false;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("stdin: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match client.request(&line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match reply {
            Reply::Ok { body, .. } => {
                if out
                    .write_all(body.as_bytes())
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    // stdout consumer gone (e.g. `… | head`): stop quietly.
                    return ExitCode::SUCCESS;
                }
            }
            Reply::Err { code, message } => {
                eprintln!("ERR {code} {message}");
                if code_is_rejection(&code) {
                    rejected = true;
                } else {
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else if rejected {
        ExitCode::from(EXIT_REJECTED)
    } else {
        ExitCode::SUCCESS
    }
}

// -------------------------------------------------------------- one-shot

fn query_main(args: &[String]) -> ExitCode {
    let mut rels: Vec<(String, String)> = Vec::new();
    let mut query_text: Option<String> = None;
    let mut show_stats = false;
    let mut explain = false;
    let mut explain_json = false;
    let mut algo_name: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut data_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel" => {
                let Some(spec) = args.get(i + 1) else {
                    return usage();
                };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--rel expects NAME=FILE, got {spec:?}");
                    return ExitCode::from(2);
                };
                rels.push((name.to_string(), path.to_string()));
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                explain = true;
                i += 1;
            }
            "--explain-json" => {
                explain_json = true;
                i += 1;
            }
            "--algo" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                algo_name = Some(name.clone());
                i += 2;
            }
            "--limit" => {
                let Some(k) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                limit = Some(k);
                i += 2;
            }
            "--threads" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threads = Some(n);
                i += 2;
            }
            "--data-dir" => {
                let Some(d) = args.get(i + 1) else {
                    return usage();
                };
                data_dir = Some(d.clone());
                i += 2;
            }
            "--help" | "-h" => return usage(),
            other => {
                if query_text.is_some() {
                    eprintln!("unexpected argument {other:?}");
                    return ExitCode::from(2);
                }
                query_text = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(query_text) = query_text else {
        return usage();
    };
    if rels.is_empty() && data_dir.is_none() {
        return usage();
    }
    let engine = match &data_dir {
        Some(dir) => match open_data_dir(dir, DurabilityOptions::default(), &rels) {
            Ok(e) => e,
            Err(code) => return code,
        },
        None => match load_relations(&rels) {
            Ok(e) => e,
            Err(code) => return code,
        },
    };
    // Resolve `--algo` up front so typos fail before any planning work —
    // a rejection (exit 3), like every other pre-execution refusal.
    let canonical_algo = match &algo_name {
        None => None,
        Some(name) => match lookup(name) {
            Some(a) => Some(a.name()),
            None => {
                eprintln!(
                    "unknown algorithm {name:?}; available: {}",
                    algorithm_names().join(", ")
                );
                return ExitCode::from(EXIT_REJECTED);
            }
        },
    };

    // The Minesweeper plan (GAO search, re-index mapping, cache) drives
    // `--explain` and both Minesweeper engines; registry baselines only
    // use it as the dispatch host.
    let uses_planner =
        canonical_algo.is_none_or(|a| matches!(a, "minesweeper" | "minesweeper-par"));
    if !uses_planner && threads.is_some() {
        eprintln!("note: --threads only applies to the minesweeper engines; ignored");
    }

    let stmt = match engine.prepare(&query_text) {
        Ok(s) => s,
        Err(e) => return engine_failure(&e),
    };

    // The one options struct every path below dispatches with; the
    // engine resolves thread defaults (e.g. minesweeper-par's
    // hardware-sized worker count) inside `dispatch_kind`.
    let opts = ExecOptions {
        algo: algo_name.clone(),
        threads: if uses_planner {
            threads.map(|t| t.max(1)).unwrap_or(0)
        } else {
            0
        },
        limit,
        collect_stats: true,
        deadline: None,
    };
    let kind = match stmt.dispatch_kind(&opts) {
        Ok(k) => k,
        Err(e) => return engine_failure(&e),
    };

    // Buffered, checked stdout: a consumer closing the pipe (`msj … |
    // head`) stops a streaming run quietly instead of panicking. The
    // body bytes come from the shared renderer — the same one `msj
    // serve` streams to sockets, which is what makes the service's
    // byte-identity contract hold by construction.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    if explain || explain_json {
        return match render::write_explain(&mut out, &stmt, &opts, explain_json) {
            Ok(_connected) => ExitCode::SUCCESS,
            Err(e) => engine_failure(&e),
        };
    }

    if let DispatchKind::Parallel(_) = kind {
        if let Some(k) = limit {
            eprintln!(
                "note: --limit {k} with --threads streams the first {k} tuples in \
                 global order (identical to the serial --limit stream) and cancels \
                 the remaining shard work early"
            );
        }
    }

    let outcome = match render::write_body(&mut out, &stmt, &opts) {
        Ok(o) => o,
        Err(e) => return engine_failure(&e),
    };
    drop(out);
    if show_stats {
        match &kind {
            DispatchKind::Baseline(name) => {
                eprintln!("# algorithm: {name}");
            }
            DispatchKind::Parallel(t) => {
                print_gao_line(&stmt);
                print_shard_lines(*t, outcome.shards.as_deref().unwrap_or(&[]));
            }
            DispatchKind::Serial => print_gao_line(&stmt),
        }
        print_stats(&outcome.stats);
    }
    ExitCode::SUCCESS
}
