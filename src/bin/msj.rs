//! `msj` — run a join from the command line.
//!
//! ```text
//! msj --rel R=edges.tsv --rel S=edges.tsv 'R(x, y), S(y, z)' \
//!     [--algo NAME] [--explain] [--stats] [--limit K]
//! ```
//!
//! Relations are whitespace-separated integer tuple files (see
//! `minesweeper_join::text`); the query lists atoms with named attributes
//! whose first-appearance order is the GAO. The planner picks a nested
//! elimination order when the query is β-acyclic and falls back to a
//! minimum-elimination-width order otherwise.
//!
//! * `--explain` prints the plan (GAO, probe mode, width, runtime bound)
//!   without executing.
//! * `--algo NAME` dispatches through the algorithm registry
//!   (`minesweeper`, `minesweeper-par`, `yannakakis`, `leapfrog`,
//!   `generic`, `hash`, `sort-merge`, `nested-loop`, `naive`); every
//!   algorithm prints the same sorted output.
//! * `--limit K` with the default Minesweeper engine is pushed into the
//!   streaming executor: the probe loop stops after `K` certified tuples
//!   instead of materializing the whole result (tuples then appear in
//!   certification order rather than sorted).
//! * `--threads N` (or `--algo minesweeper-par`) runs the sharded
//!   parallel engine: the first GAO attribute's domain is split into up
//!   to `N` equi-depth shards, each swept by an independent probe loop on
//!   its own worker thread; output is byte-identical to the serial
//!   engine's. `--stats` then also reports the per-shard breakdown.
//!   `--limit` with the parallel engine only truncates the printout — the
//!   probe work is paid in full (use the serial engine for pushdown).

use std::process::ExitCode;

use std::io::Write;

use minesweeper_join::baselines::{algorithm_names, lookup};
use minesweeper_join::core::plan;
use minesweeper_join::storage::{Database, ExecStats, Tuple};
use minesweeper_join::text::{parse_query, parse_relation, render_plan};

fn usage() -> ExitCode {
    eprintln!(
        "usage: msj --rel NAME=FILE [--rel NAME=FILE ...] 'QUERY' \
         [--algo NAME] [--explain] [--stats] [--limit K] [--threads N]\n\
         example: msj --rel R=edges.tsv --rel S=edges.tsv 'R(x,y), S(y,z)' --stats\n\
         algorithms: {}",
        algorithm_names().join(", ")
    );
    ExitCode::from(2)
}

/// Writes one output line, reporting whether stdout is still open. A
/// closed pipe (e.g. `msj … | head`) is a normal way for a consumer to
/// stop a streaming run, so callers treat `false` as "stop quietly", not
/// as an error.
fn out_line(out: &mut impl Write, line: std::fmt::Arguments<'_>) -> bool {
    writeln!(out, "{line}").is_ok()
}

fn print_tuples(out: &mut impl Write, tuples: &[Tuple]) -> bool {
    for t in tuples {
        let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
        if !out_line(out, format_args!("{}", row.join("\t"))) {
            return false;
        }
    }
    true
}

/// Prints the attribute header and a materialized result truncated to
/// `limit`, with the `# … N more` marker — the shared output shape of the
/// registry-dispatch and parallel-engine paths.
fn print_limited(
    out: &mut impl Write,
    attr_names: &[String],
    tuples: &[Tuple],
    limit: Option<usize>,
) {
    let shown = limit.unwrap_or(usize::MAX).min(tuples.len());
    let open = out_line(out, format_args!("# {}", attr_names.join("\t")))
        && print_tuples(out, &tuples[..shown]);
    if open && tuples.len() > shown {
        out_line(out, format_args!("# … {} more", tuples.len() - shown));
    }
}

fn print_stats(stats: &ExecStats) {
    eprintln!("# outputs: {}", stats.outputs);
    eprintln!(
        "# findgap calls (certificate proxy): {}",
        stats.find_gap_calls
    );
    eprintln!("# probe points: {}", stats.probe_points);
    eprintln!("# constraints inserted: {}", stats.constraints_inserted);
    eprintln!("# backtracks: {}", stats.backtracks);
    eprintln!("# comparisons: {}", stats.comparisons);
    eprintln!("# intermediate tuples: {}", stats.intermediate_tuples);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rels: Vec<(String, String)> = Vec::new();
    let mut query_text: Option<String> = None;
    let mut show_stats = false;
    let mut explain = false;
    let mut algo_name: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel" => {
                let Some(spec) = args.get(i + 1) else {
                    return usage();
                };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--rel expects NAME=FILE, got {spec:?}");
                    return ExitCode::from(2);
                };
                rels.push((name.to_string(), path.to_string()));
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                explain = true;
                i += 1;
            }
            "--algo" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                algo_name = Some(name.clone());
                i += 2;
            }
            "--limit" => {
                let Some(k) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                limit = Some(k);
                i += 2;
            }
            "--threads" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threads = Some(n);
                i += 2;
            }
            "--help" | "-h" => return usage(),
            other => {
                if query_text.is_some() {
                    eprintln!("unexpected argument {other:?}");
                    return ExitCode::from(2);
                }
                query_text = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(query_text) = query_text else {
        return usage();
    };
    if rels.is_empty() {
        return usage();
    }
    let mut db = Database::new();
    for (name, path) in &rels {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rel = match parse_relation(name, &text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = db.add(rel) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let parsed = match parse_query(&query_text, &db) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Resolve `--algo` up front so typos fail before any planning work.
    let algo = match &algo_name {
        None => None,
        Some(name) => match lookup(name) {
            Some(a) => Some(a),
            None => {
                eprintln!(
                    "unknown algorithm {name:?}; available: {}",
                    algorithm_names().join(", ")
                );
                return ExitCode::from(2);
            }
        },
    };

    // The Minesweeper plan (GAO search, re-index mapping) is only computed
    // for the paths that use it: `--explain` and the two Minesweeper
    // engines. Registry algorithms other than those never consult it.
    let uses_planner = algo
        .as_ref()
        .is_none_or(|a| matches!(a.name(), "minesweeper" | "minesweeper-par"));

    // `--threads N`, or `--algo minesweeper-par` (auto-sized workers),
    // selects the sharded parallel engine.
    let par_threads: Option<usize> = match (&algo, threads) {
        _ if !uses_planner => {
            if threads.is_some() {
                eprintln!("note: --threads only applies to the minesweeper engines; ignored");
            }
            None
        }
        (Some(a), t) if a.name() == "minesweeper-par" => {
            Some(t.unwrap_or_else(|| minesweeper_join::core::MinesweeperPar::default().threads))
        }
        (_, Some(t)) => Some(t.max(1)),
        (_, None) => None,
    };

    // Buffered, checked stdout: a consumer closing the pipe (`msj … |
    // head`) stops a streaming run quietly instead of panicking.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    if explain {
        if !uses_planner {
            let a = algo.as_ref().expect("non-planner implies --algo");
            out_line(
                &mut out,
                format_args!("algorithm: {} — {}", a.name(), a.description()),
            );
            out_line(
                &mut out,
                format_args!(
                    "(no Minesweeper plan applies; GAO/probe-mode planning is \
                     specific to the default engine)"
                ),
            );
        } else {
            let query_plan = match plan(&db, &parsed.query) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            out_line(
                &mut out,
                format_args!("{}", render_plan(&db, &query_plan, &parsed.attr_names)),
            );
            if let Some(t) = par_threads {
                out_line(
                    &mut out,
                    format_args!(
                        "parallel: up to {t} equi-depth shard(s) of the first GAO \
                         attribute, one probe loop per shard, order-preserving \
                         concatenation"
                    ),
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    // Registry dispatch (`--algo`): run to completion through the unified
    // Algorithm trait; output is sorted identically for every entry.
    if let Some(algo) = &algo {
        if !uses_planner {
            let result = match algo.run(&db, &parsed.query) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            print_limited(&mut out, &parsed.attr_names, &result.tuples, limit);
            drop(out);
            if show_stats {
                eprintln!("# algorithm: {}", algo.name());
                print_stats(&result.stats);
            }
            return ExitCode::SUCCESS;
        }
        // `--algo minesweeper` falls through to the default engine so it
        // benefits from the streaming `--limit` pushdown too.
    }

    // Default engine: Minesweeper through the plan. With `--limit` the
    // limit is pushed into the streaming executor — the probe loop stops
    // after K certified tuples (or as soon as the consumer closes the
    // pipe); without it, materialize sorted output.
    let query_plan = match plan(&db, &parsed.query) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Sharded parallel engine (`--threads` / `--algo minesweeper-par`):
    // materialize across the worker pool, then print (optionally
    // truncated — the probe work is already done, unlike serial --limit).
    if let Some(t) = par_threads {
        let exec = match query_plan.execute_parallel(&db, t) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print_limited(&mut out, &parsed.attr_names, &exec.result.tuples, limit);
        drop(out);
        if show_stats {
            eprintln!(
                "# gao order: {:?} (mode {:?}, width {})",
                query_plan.gao().order,
                query_plan.gao().mode,
                query_plan.gao().width
            );
            eprintln!(
                "# parallel: {} worker(s), {} shard(s)",
                t,
                exec.shards.len()
            );
            for (i, s) in exec.shards.iter().enumerate() {
                eprintln!(
                    "#   shard {i} {}: outputs={} findgap={} probes={}",
                    s.bounds, s.stats.outputs, s.stats.find_gap_calls, s.stats.probe_points
                );
            }
            print_stats(&exec.result.stats);
        }
        return ExitCode::SUCCESS;
    }

    let mut open = out_line(&mut out, format_args!("# {}", parsed.attr_names.join("\t")));
    let stats = if let Some(k) = limit {
        let mut stream = match query_plan.stream(&db) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        // Print tuples as they are certified; stop at the limit or when
        // the consumer goes away — either way the remaining probe work is
        // never done.
        let mut yielded = 0usize;
        while open && yielded < k {
            let Some(t) = stream.next() else { break };
            let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            open = out_line(&mut out, format_args!("{}", row.join("\t")));
            yielded += 1;
        }
        // Snapshot before peeking so `--stats` reflects only the shown
        // work (the peek certifies at most one extra tuple to make the
        // truncation marker truthful).
        let stats = stream.stats();
        if open && yielded == k && stream.next().is_some() {
            out_line(
                &mut out,
                format_args!("# … output truncated at {k} (streaming)"),
            );
        }
        stats
    } else {
        let exec = match query_plan.execute(&db) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print_tuples(&mut out, &exec.result.tuples);
        exec.result.stats
    };
    drop(out);
    if show_stats {
        eprintln!(
            "# gao order: {:?} (mode {:?}, width {})",
            query_plan.gao().order,
            query_plan.gao().mode,
            query_plan.gao().width
        );
        print_stats(&stats);
    }
    ExitCode::SUCCESS
}
