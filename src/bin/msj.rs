//! `msj` — run a join from the command line.
//!
//! ```text
//! msj --rel R=edges.tsv --rel S=edges.tsv 'R(x, y), S(y, z)' \
//!     [--algo NAME] [--explain] [--explain-json] [--stats] [--limit K] \
//!     [--threads N]
//! ```
//!
//! Relations are whitespace-separated tuple files (see
//! `minesweeper_join::text`); columns may hold integers or strings —
//! string columns are dictionary-encoded by the engine and decoded on
//! output. The query lists atoms with named attributes whose
//! first-appearance order is the GAO; arguments may also be literals
//! (`Cities(c, "north-america")`, `R(x, 7)`) that constrain a position to
//! a constant. The planner picks a nested elimination order when the
//! query is β-acyclic and falls back to a minimum-elimination-width order
//! otherwise.
//!
//! Everything runs through the `Engine` front door: the query is
//! prepared once (plan + any GAO re-indexing, cached by query shape) and
//! each evaluator dispatches through the same `PreparedStatement` path.
//!
//! * `--explain` prints the plan (GAO, probe mode, width, runtime bound,
//!   cache status) without executing; `--explain-json` prints the same
//!   structured `ExplainPlan` as JSON.
//! * `--algo NAME` dispatches through the algorithm registry
//!   (`minesweeper`, `minesweeper-par`, `yannakakis`, `leapfrog`,
//!   `generic`, `hash`, `sort-merge`, `nested-loop`, `naive`); every
//!   algorithm prints the same sorted output.
//! * `--limit K` with the default Minesweeper engine is pushed into the
//!   streaming executor: the probe loop stops after `K` certified tuples
//!   instead of materializing the whole result (tuples then appear in
//!   certification order rather than sorted).
//! * `--threads N` (or `--algo minesweeper-par`) runs the sharded
//!   parallel engine: the first GAO attribute's domain is split into
//!   equi-depth shard tasks (a heavy duplicate run is nested-split on
//!   the *second* attribute), the tasks run on a work-stealing deque of
//!   `N` workers, and the per-shard streams are reassembled by a
//!   **global-order k-way heap merge** — byte-identical to the serial
//!   engine's output. `--stats` then also reports the per-shard
//!   breakdown (including stolen and cancelled tasks). `--limit K` with
//!   `--threads` streams the first `K` tuples of the global attribute
//!   order — byte-identical to the serial `--limit` stream, under any
//!   re-indexed GAO — and **cancels** the remaining shard work early.

use std::process::ExitCode;

use std::io::Write;

use minesweeper_join::baselines::{algorithm_names, lookup};
use minesweeper_join::engine::{Engine, ExecOptions, PreparedStatement};
use minesweeper_join::storage::{ExecStats, Value};

fn usage() -> ExitCode {
    eprintln!(
        "usage: msj --rel NAME=FILE [--rel NAME=FILE ...] 'QUERY' \
         [--algo NAME] [--explain] [--explain-json] [--stats] [--limit K] [--threads N]\n\
         example: msj --rel R=edges.tsv --rel S=edges.tsv 'R(x,y), S(y,z)' --stats\n\
         algorithms: {}",
        algorithm_names().join(", ")
    );
    ExitCode::from(2)
}

/// Writes one output line, reporting whether stdout is still open. A
/// closed pipe (e.g. `msj … | head`) is a normal way for a consumer to
/// stop a streaming run, so callers treat `false` as "stop quietly", not
/// as an error.
fn out_line(out: &mut impl Write, line: std::fmt::Arguments<'_>) -> bool {
    writeln!(out, "{line}").is_ok()
}

fn row_text(row: &[Value]) -> String {
    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
    cells.join("\t")
}

fn print_rows(out: &mut impl Write, rows: &[Vec<Value>]) -> bool {
    for r in rows {
        if !out_line(out, format_args!("{}", row_text(r))) {
            return false;
        }
    }
    true
}

/// Prints the attribute header and a materialized result truncated to
/// `limit`, with the `# … N more` marker — the output shape of the
/// registry-dispatch path (which materializes everything, so the exact
/// remainder is known).
fn print_limited(
    out: &mut impl Write,
    columns: &[String],
    rows: &[Vec<Value>],
    limit: Option<usize>,
) {
    let shown = limit.unwrap_or(usize::MAX).min(rows.len());
    let open =
        out_line(out, format_args!("# {}", columns.join("\t"))) && print_rows(out, &rows[..shown]);
    if open && rows.len() > shown {
        out_line(out, format_args!("# … {} more", rows.len() - shown));
    }
}

fn print_stats(stats: &ExecStats) {
    eprintln!("# outputs: {}", stats.outputs);
    eprintln!(
        "# findgap calls (certificate proxy): {}",
        stats.find_gap_calls
    );
    eprintln!("# probe points: {}", stats.probe_points);
    eprintln!("# constraints inserted: {}", stats.constraints_inserted);
    eprintln!("# backtracks: {}", stats.backtracks);
    eprintln!("# comparisons: {}", stats.comparisons);
    eprintln!("# intermediate tuples: {}", stats.intermediate_tuples);
}

fn print_gao_line(stmt: &PreparedStatement<'_>) {
    let gao = stmt.plan().gao();
    eprintln!(
        "# gao order: {:?} (mode {:?}, width {})",
        gao.order, gao.mode, gao.width
    );
}

/// The per-shard breakdown of a parallel run: one line per shard task
/// with its output-space slice and counters, flagged when the task was
/// stolen by an idle worker or cancelled before completing.
fn print_shard_lines(threads: usize, shards: &[minesweeper_join::core::ShardStats]) {
    eprintln!(
        "# parallel: {} worker(s), {} shard task(s)",
        threads,
        shards.len()
    );
    for (i, s) in shards.iter().enumerate() {
        eprintln!(
            "#   shard {i} {}: outputs={} findgap={} probes={}{}{}",
            s.spec,
            s.stats.outputs,
            s.stats.find_gap_calls,
            s.stats.probe_points,
            if s.stolen { " (stolen)" } else { "" },
            if s.completed {
                ""
            } else {
                " (cancelled/capped)"
            },
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rels: Vec<(String, String)> = Vec::new();
    let mut query_text: Option<String> = None;
    let mut show_stats = false;
    let mut explain = false;
    let mut explain_json = false;
    let mut algo_name: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel" => {
                let Some(spec) = args.get(i + 1) else {
                    return usage();
                };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--rel expects NAME=FILE, got {spec:?}");
                    return ExitCode::from(2);
                };
                rels.push((name.to_string(), path.to_string()));
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--explain" => {
                explain = true;
                i += 1;
            }
            "--explain-json" => {
                explain_json = true;
                i += 1;
            }
            "--algo" => {
                let Some(name) = args.get(i + 1) else {
                    return usage();
                };
                algo_name = Some(name.clone());
                i += 2;
            }
            "--limit" => {
                let Some(k) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                limit = Some(k);
                i += 2;
            }
            "--threads" => {
                let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                threads = Some(n);
                i += 2;
            }
            "--help" | "-h" => return usage(),
            other => {
                if query_text.is_some() {
                    eprintln!("unexpected argument {other:?}");
                    return ExitCode::from(2);
                }
                query_text = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(query_text) = query_text else {
        return usage();
    };
    if rels.is_empty() {
        return usage();
    }
    let mut engine = Engine::new();
    for (name, path) in &rels {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = engine.load_tsv(name, &text) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Resolve `--algo` up front so typos fail before any planning work.
    let canonical_algo = match &algo_name {
        None => None,
        Some(name) => match lookup(name) {
            Some(a) => Some(a.name()),
            None => {
                eprintln!(
                    "unknown algorithm {name:?}; available: {}",
                    algorithm_names().join(", ")
                );
                return ExitCode::from(2);
            }
        },
    };

    // The Minesweeper plan (GAO search, re-index mapping, cache) drives
    // `--explain` and both Minesweeper engines; registry baselines only
    // use it as the dispatch host.
    let uses_planner =
        canonical_algo.is_none_or(|a| matches!(a, "minesweeper" | "minesweeper-par"));
    if !uses_planner && threads.is_some() {
        eprintln!("note: --threads only applies to the minesweeper engines; ignored");
    }

    let stmt = match engine.prepare(&query_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // The one options struct every path below dispatches with; the
    // engine resolves thread defaults (e.g. minesweeper-par's
    // hardware-sized worker count), and `effective_threads` reports the
    // resolved worker count back for printing.
    let mut opts = ExecOptions {
        algo: algo_name.clone(),
        threads: if uses_planner {
            threads.map(|t| t.max(1)).unwrap_or(0)
        } else {
            0
        },
        limit,
        collect_stats: true,
    };
    let par_threads = match stmt.effective_threads(&opts) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Buffered, checked stdout: a consumer closing the pipe (`msj … |
    // head`) stops a streaming run quietly instead of panicking.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());

    if explain || explain_json {
        // Baselines have no Minesweeper plan: the human form says so, and
        // the JSON form reports the algorithm with a null plan rather
        // than mislabelling the planner's GAO/bound as the baseline's.
        if !uses_planner {
            let a = lookup(canonical_algo.expect("non-planner implies --algo"))
                .expect("canonical name resolves");
            if explain_json {
                use minesweeper_join::core::json_string;
                out_line(
                    &mut out,
                    format_args!(
                        "{{\"algorithm\":{},\"description\":{},\"plan\":null}}",
                        json_string(a.name()),
                        json_string(a.description())
                    ),
                );
            } else {
                out_line(
                    &mut out,
                    format_args!("algorithm: {} — {}", a.name(), a.description()),
                );
                out_line(
                    &mut out,
                    format_args!(
                        "(no Minesweeper plan applies; GAO/probe-mode planning is \
                         specific to the default engine)"
                    ),
                );
            }
            return ExitCode::SUCCESS;
        }
        let ep = match stmt.explain(&opts) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if explain_json {
            out_line(&mut out, format_args!("{}", ep.to_json()));
        } else {
            out_line(&mut out, format_args!("{}", ep.render()));
        }
        return ExitCode::SUCCESS;
    }

    // Registry dispatch (`--algo` naming a baseline): run to completion
    // through the unified PreparedStatement path; output is sorted
    // identically for every entry, and the exact remainder under --limit
    // is known because baselines materialize everything.
    if !uses_planner {
        opts.limit = None;
        let result = match stmt.execute(&opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print_limited(&mut out, &result.columns, &result.rows, limit);
        drop(out);
        if show_stats {
            eprintln!("# algorithm: {}", canonical_algo.expect("baseline name"));
            if let Some(stats) = &result.stats {
                print_stats(stats);
            }
        }
        return ExitCode::SUCCESS;
    }

    // Sharded parallel engine (`--threads` / `--algo minesweeper-par`).
    // With `--limit K` the incremental parallel stream yields the first K
    // tuples of the global attribute order — the serial stream's exact
    // sequence — and cancels queued and in-flight shards once K tuples
    // (plus a one-tuple truncation probe) are out: memory and probe work
    // both stay proportional to K, matching the serial stream's
    // pushdown. Without a limit, materialize across the worker pool:
    // sorted output, byte-identical to the serial engine.
    if let Some(t) = par_threads {
        if let Some(k) = limit {
            eprintln!(
                "note: --limit {k} with --threads streams the first {k} tuples in \
                 global order (identical to the serial --limit stream) and cancels \
                 the remaining shard work early"
            );
            let mut stream = match stmt.stream(&opts) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut open = out_line(&mut out, format_args!("# {}", stmt.columns().join("\t")));
            let mut yielded = 0usize;
            while open && yielded < k {
                let Some(row) = stream.next() else { break };
                open = out_line(&mut out, format_args!("{}", row_text(&row)));
                yielded += 1;
            }
            // Same marker as the serial streaming path: the parallel
            // stream is byte-identical to it, truncation line included.
            if open && yielded == k && stream.truncated() {
                out_line(&mut out, format_args!("# … output truncated at {k}"));
            }
            drop(out);
            if show_stats {
                // Join the workers first so the counters are final.
                let (stats, shards) = stream.finish();
                print_gao_line(&stmt);
                print_shard_lines(t, shards.as_deref().unwrap_or(&[]));
                print_stats(&stats);
            }
            return ExitCode::SUCCESS;
        }
        let result = match stmt.execute(&opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let _ = out_line(&mut out, format_args!("# {}", result.columns.join("\t")))
            && print_rows(&mut out, &result.rows);
        drop(out);
        if show_stats {
            print_gao_line(&stmt);
            print_shard_lines(t, result.shards.as_deref().unwrap_or(&[]));
            if let Some(stats) = &result.stats {
                print_stats(stats);
            }
        }
        return ExitCode::SUCCESS;
    }

    // Default engine: serial Minesweeper through the cached plan. With
    // `--limit` the limit is pushed into the streaming executor — the
    // probe loop stops after K certified tuples (or as soon as the
    // consumer closes the pipe); without it, materialize sorted output.
    let mut open = out_line(&mut out, format_args!("# {}", stmt.columns().join("\t")));
    let stats = if let Some(k) = limit {
        let stream_opts = ExecOptions {
            limit: None,
            ..opts.clone()
        };
        let mut stream = match stmt.stream(&stream_opts) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        // Print tuples as they are certified; stop at the limit or when
        // the consumer goes away — either way the remaining probe work is
        // never done.
        let mut yielded = 0usize;
        while open && yielded < k {
            let Some(row) = stream.next() else { break };
            open = out_line(&mut out, format_args!("{}", row_text(&row)));
            yielded += 1;
        }
        // Snapshot before peeking so `--stats` reflects only the shown
        // work (the peek certifies at most one extra tuple to make the
        // truncation marker truthful).
        let stats = stream.stats();
        if open && yielded == k && stream.next().is_some() {
            out_line(&mut out, format_args!("# … output truncated at {k}"));
        }
        stats
    } else {
        let result = match stmt.execute(&opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        print_rows(&mut out, &result.rows);
        result.stats.unwrap_or_default()
    };
    drop(out);
    if show_stats {
        print_gao_line(&stmt);
        print_stats(&stats);
    }
    ExitCode::SUCCESS
}
