//! `msj` — run a Minesweeper join from the command line.
//!
//! ```text
//! msj --rel R=edges.tsv --rel S=edges.tsv 'R(x, y), S(y, z)' [--stats] [--limit k]
//! ```
//!
//! Relations are whitespace-separated integer tuple files (see
//! `minesweeper_join::text`); the query lists atoms with named attributes
//! whose first-appearance order is the GAO. The planner picks a nested
//! elimination order when the query is β-acyclic and falls back to a
//! minimum-elimination-width order otherwise.

use std::process::ExitCode;

use minesweeper_join::core::execute;
use minesweeper_join::storage::Database;
use minesweeper_join::text::{parse_query, parse_relation};

fn usage() -> ExitCode {
    eprintln!(
        "usage: msj --rel NAME=FILE [--rel NAME=FILE ...] 'QUERY' [--stats] [--limit K]\n\
         example: msj --rel R=edges.tsv --rel S=edges.tsv 'R(x,y), S(y,z)' --stats"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rels: Vec<(String, String)> = Vec::new();
    let mut query_text: Option<String> = None;
    let mut show_stats = false;
    let mut limit: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel" => {
                let Some(spec) = args.get(i + 1) else { return usage() };
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("--rel expects NAME=FILE, got {spec:?}");
                    return ExitCode::from(2);
                };
                rels.push((name.to_string(), path.to_string()));
                i += 2;
            }
            "--stats" => {
                show_stats = true;
                i += 1;
            }
            "--limit" => {
                let Some(k) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                limit = Some(k);
                i += 2;
            }
            "--help" | "-h" => return usage(),
            other => {
                if query_text.is_some() {
                    eprintln!("unexpected argument {other:?}");
                    return ExitCode::from(2);
                }
                query_text = Some(other.to_string());
                i += 1;
            }
        }
    }
    let Some(query_text) = query_text else { return usage() };
    if rels.is_empty() {
        return usage();
    }
    let mut db = Database::new();
    for (name, path) in &rels {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let rel = match parse_relation(name, &text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = db.add(rel) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let parsed = match parse_query(&query_text, &db) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let exec = match execute(&db, &parsed.query) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("# {}", parsed.attr_names.join("\t"));
    let shown = limit.unwrap_or(usize::MAX);
    for t in exec.result.tuples.iter().take(shown) {
        let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
        println!("{}", row.join("\t"));
    }
    if exec.result.tuples.len() > shown {
        println!("# … {} more", exec.result.tuples.len() - shown);
    }
    if show_stats {
        let s = &exec.result.stats;
        eprintln!("# gao order: {:?} (mode {:?}, width {})", exec.gao.order, exec.gao.mode, exec.gao.width);
        eprintln!("# outputs: {}", s.outputs);
        eprintln!("# findgap calls (certificate proxy): {}", s.find_gap_calls);
        eprintln!("# probe points: {}", s.probe_points);
        eprintln!("# constraints inserted: {}", s.constraints_inserted);
        eprintln!("# backtracks: {}", s.backtracks);
    }
    ExitCode::SUCCESS
}
