//! Serial vs. sharded-parallel equivalence, property-tested.
//!
//! The sharded executor's contract is exact: for every query and every
//! worker count `K`, [`minesweeper_core::Plan::execute_parallel`] returns
//! byte-identical tuples to the serial [`minesweeper_core::Plan::execute`],
//! and the aggregate statistics are precisely the sum of the per-shard
//! counters (with `outputs` matching the materialized tuple count). The
//! properties draw random tree-shaped queries from
//! [`minesweeper_workloads::random_queries`] and sweep `K` across the
//! interesting regimes: serial (`K = 1`), genuinely parallel, and
//! `K` far beyond the distinct-value count of the primary relation.

use minesweeper_join::core::plan;
use minesweeper_join::storage::ExecStats;
use minesweeper_workloads::random_queries::{random_tree_instance, TreeQueryConfig};
use proptest::prelude::*;

/// Runs both engines and checks output equality + stats-sum consistency.
fn check_equivalence(cfg: TreeQueryConfig, seed: u64, threads: usize) -> Result<(), TestCaseError> {
    let inst = random_tree_instance(cfg, seed);
    let p = plan(&inst.db, &inst.query).expect("generated queries are valid");
    let serial = p.execute(&inst.db).expect("serial run");
    let par = p.execute_parallel(&inst.db, threads).expect("parallel run");
    prop_assert_eq!(
        &par.result.tuples,
        &serial.result.tuples,
        "seed {} threads {}: sharded output must be byte-identical",
        seed,
        threads
    );
    prop_assert_eq!(&par.gao, &serial.gao);
    prop_assert!(
        par.shards.len() <= threads.max(1),
        "never more shards than workers"
    );
    let mut sum = ExecStats::new();
    for s in &par.shards {
        sum.merge(&s.stats);
    }
    prop_assert_eq!(
        sum,
        par.result.stats,
        "aggregate stats must be the exact sum of per-shard stats"
    );
    prop_assert_eq!(par.result.stats.outputs as usize, par.result.tuples.len());
    // Shards must partition the domain: contiguous, in order.
    for w in par.shards.windows(2) {
        prop_assert!(w[0].bounds.hi < w[1].bounds.lo, "shards ordered/disjoint");
        prop_assert_eq!(w[0].bounds.hi + 1, w[1].bounds.lo, "no domain holes");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_equals_serial_on_random_tree_queries(
        seed in 0u64..1_000_000,
        n_attrs in 3usize..6,
        threads in 1usize..9,
    ) {
        let cfg = TreeQueryConfig { n_attrs, ..TreeQueryConfig::default() };
        check_equivalence(cfg, seed, threads)?;
    }

    #[test]
    fn sharded_equals_serial_when_k_exceeds_distinct_values(
        seed in 0u64..1_000_000,
        threads in 32usize..129,
    ) {
        // Domain of 5 values ⇒ the primary relation has at most 5 distinct
        // first values, far below the requested worker count: the split
        // must cap, not pad with empty shards.
        let cfg = TreeQueryConfig {
            n_attrs: 3,
            domain: 5,
            ..TreeQueryConfig::default()
        };
        check_equivalence(cfg, seed, threads)?;
    }

    #[test]
    fn sharded_equals_serial_at_k_one(seed in 0u64..1_000_000) {
        // K = 1 is the serial fallback: one unbounded shard whose stats
        // are the aggregate.
        let cfg = TreeQueryConfig { n_attrs: 4, ..TreeQueryConfig::default() };
        check_equivalence(cfg, seed, 1)?;
    }

    #[test]
    fn sharded_handles_sparse_skewed_instances(
        seed in 0u64..1_000_000,
        threads in 2usize..7,
    ) {
        // Tiny relations over a wide domain: many shards see no output at
        // all, boundary shards are unbalanced, empties are common.
        let cfg = TreeQueryConfig {
            n_attrs: 4,
            tuples_per_edge: 6,
            domain: 100,
            unary_prob: 0.8,
            unary_selectivity: 0.2,
        };
        check_equivalence(cfg, seed, threads)?;
    }
}
