//! Serial vs. sharded-parallel equivalence, property-tested.
//!
//! The sharded executor's contract is exact: for every query and every
//! worker count `K`, [`minesweeper_core::Plan::execute_parallel`] returns
//! byte-identical tuples to the serial [`minesweeper_core::Plan::execute`],
//! and the aggregate statistics are precisely the sum of the per-shard
//! counters (with `outputs` matching the materialized tuple count). The
//! properties draw random tree-shaped queries from
//! [`minesweeper_workloads::random_queries`] and sweep `K` across the
//! interesting regimes: serial (`K = 1`), genuinely parallel, and
//! `K` far beyond the distinct-value count of the primary relation.
//!
//! Two further properties pin the PR 4 additions: a >90%-skewed first
//! GAO attribute must still produce more than one effective shard (the
//! nested second-attribute split), and a parallel stream consumed for
//! one tuple must cancel the remaining shard work (asserted through the
//! deterministic work counters, not wall-clock).
//!
//! The global-order merge (ISSUE 5) adds the exact-prefix contract:
//! parallel `--limit k` output must be **byte-identical to the serial
//! sorted prefix** — the serial stream's first `k` tuples — under random
//! re-indexed GAOs and random shard/thread counts, and cancelling the
//! merge after `k` must skip most of the suffix's probe work.

use std::sync::Arc;

use minesweeper_join::core::{plan, Query, MAX_TASKS_PER_THREAD};
use minesweeper_join::storage::{builder, Database, ExecStats, Tuple};
use minesweeper_workloads::random_queries::{random_tree_instance, TreeQueryConfig};
use proptest::prelude::*;

/// Runs both engines and checks output equality + stats-sum consistency.
fn check_equivalence(cfg: TreeQueryConfig, seed: u64, threads: usize) -> Result<(), TestCaseError> {
    let inst = random_tree_instance(cfg, seed);
    let p = plan(&inst.db, &inst.query).expect("generated queries are valid");
    let serial = p.execute(&inst.db).expect("serial run");
    let par = p.execute_parallel(&inst.db, threads).expect("parallel run");
    prop_assert_eq!(
        &par.result.tuples,
        &serial.result.tuples,
        "seed {} threads {}: sharded output must be byte-identical",
        seed,
        threads
    );
    prop_assert_eq!(&par.gao, &serial.gao);
    prop_assert!(
        par.shards.len() <= threads.max(1) * MAX_TASKS_PER_THREAD,
        "task count bounded: {} tasks for {} workers",
        par.shards.len(),
        threads
    );
    let mut sum = ExecStats::new();
    for s in &par.shards {
        prop_assert!(s.completed, "an unlimited run exhausts every shard");
        sum.merge(&s.stats);
    }
    prop_assert_eq!(
        sum,
        par.result.stats,
        "aggregate stats must be the exact sum of per-shard stats"
    );
    prop_assert_eq!(par.result.stats.outputs as usize, par.result.tuples.len());
    // Shard specs must tile the output space in lexicographic order:
    // plain shards are contiguous on the first attribute; nested shards
    // share one first interval and are contiguous on the second.
    for w in par.shards.windows(2) {
        let (a, b) = (w[0].spec, w[1].spec);
        if a.bounds == b.bounds {
            let s1 = a.second.expect("grouped shards are nested");
            let s2 = b.second.expect("grouped shards are nested");
            prop_assert_eq!(s1.hi + 1, s2.lo, "nested slices contiguous");
        } else {
            prop_assert_eq!(a.bounds.hi + 1, b.bounds.lo, "no domain holes");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_equals_serial_on_random_tree_queries(
        seed in 0u64..1_000_000,
        n_attrs in 3usize..6,
        threads in 1usize..9,
    ) {
        let cfg = TreeQueryConfig { n_attrs, ..TreeQueryConfig::default() };
        check_equivalence(cfg, seed, threads)?;
    }

    #[test]
    fn sharded_equals_serial_when_k_exceeds_distinct_values(
        seed in 0u64..1_000_000,
        threads in 32usize..129,
    ) {
        // Domain of 5 values ⇒ the primary relation has at most 5 distinct
        // first values, far below the requested worker count: the split
        // must cap, not pad with empty shards.
        let cfg = TreeQueryConfig {
            n_attrs: 3,
            domain: 5,
            ..TreeQueryConfig::default()
        };
        check_equivalence(cfg, seed, threads)?;
    }

    #[test]
    fn sharded_equals_serial_at_k_one(seed in 0u64..1_000_000) {
        // K = 1 is the serial fallback: one unbounded shard whose stats
        // are the aggregate.
        let cfg = TreeQueryConfig { n_attrs: 4, ..TreeQueryConfig::default() };
        check_equivalence(cfg, seed, 1)?;
    }

    #[test]
    fn sharded_handles_sparse_skewed_instances(
        seed in 0u64..1_000_000,
        threads in 2usize..7,
    ) {
        // Tiny relations over a wide domain: many shards see no output at
        // all, boundary shards are unbalanced, empties are common.
        let cfg = TreeQueryConfig {
            n_attrs: 4,
            tuples_per_edge: 6,
            domain: 100,
            unary_prob: 0.8,
            unary_selectivity: 0.2,
        };
        check_equivalence(cfg, seed, threads)?;
    }
}

/// A path instance `R(a,b) ⋈ S(b,c)` whose planner GAO is `[2,1,0]`
/// (data-blind nested elimination order), with `heavy_share` of S's
/// attribute-2 tuples concentrated on one value — i.e. a duplicate run on
/// the first *execution* attribute.
fn skewed_instance(n: i64, light: i64) -> (Database, Query) {
    let mut db = Database::new();
    let r = db
        .add(builder::binary("R", (0..n).map(|i| ((i * 7) % n, i))))
        .unwrap();
    // `light` tuples spread over distinct attribute-2 values; the rest
    // share the single value `n + 1`.
    let s = db
        .add(builder::binary(
            "S",
            (0..n).map(|i| (i, if i < light { i } else { n + 1 })),
        ))
        .unwrap();
    let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]);
    (db, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Acceptance (ISSUE 4): when one first-GAO-attribute value holds
    /// >90% of the primary's tuples, the run must still execute in more
    /// than one effective shard — the nested split engages instead of the
    /// PR 2 serial fallback — with byte-identical output.
    #[test]
    fn dominant_first_value_still_shards(
        n in 60i64..200,
        light_frac in 0usize..10,   // ≤ 9% of tuples off the heavy value
        threads in 2usize..6,
    ) {
        let light = (n as usize * light_frac / 100) as i64;
        let (db, q) = skewed_instance(n, light);
        let p = plan(&db, &q).expect("valid query");
        let serial = p.execute(&db).expect("serial run");
        let par = p.execute_parallel(&db, threads).expect("parallel run");
        prop_assert_eq!(&par.result.tuples, &serial.result.tuples);
        prop_assert!(
            par.shards.len() > 1,
            "n={} light={} threads={}: >90% skew must still shard, got {:?}",
            n,
            light,
            threads,
            par.shards.iter().map(|s| s.spec).collect::<Vec<_>>()
        );
        prop_assert!(
            par.shards.iter().any(|s| s.spec.is_nested()),
            "the dominant run must be split on the second attribute"
        );
        let mut sum = ExecStats::new();
        for s in &par.shards {
            sum.merge(&s.stats);
        }
        prop_assert_eq!(sum, par.result.stats);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Acceptance (ISSUE 5): parallel `--limit k` is byte-identical to
    /// the serial sorted prefix under random tree queries (re-indexed
    /// GAOs included — the generator's path shapes routinely force a
    /// non-identity order) and random thread counts. Checked at both
    /// API levels: the incremental stream must reproduce the serial
    /// stream's exact *sequence*, and `execute_limited` must return the
    /// serial prefix sorted in the original numbering.
    #[test]
    fn parallel_limit_is_the_exact_serial_prefix(
        seed in 0u64..1_000_000,
        n_attrs in 3usize..6,
        threads in 1usize..9,
        k in 1usize..30,
    ) {
        let cfg = TreeQueryConfig { n_attrs, ..TreeQueryConfig::default() };
        let inst = random_tree_instance(cfg, seed);
        let p = plan(&inst.db, &inst.query).expect("generated queries are valid");
        let serial: Vec<Tuple> = p.stream(&inst.db).expect("serial stream").take(k).collect();
        let prepared = p.prepare_exec(&inst.db).expect("prepare");
        let limited = p
            .clone()
            .sharded(threads)
            .execute_limited(&inst.db, Some(k))
            .expect("parallel limited run");
        let db = Arc::new(inst.db);
        let par: Vec<Tuple> = prepared.stream_parallel(&db, threads, Some(k)).collect();
        prop_assert_eq!(
            &par,
            &serial,
            "seed {} threads {} k {}: parallel stream must be the serial sequence",
            seed,
            threads,
            k
        );
        let mut sorted_prefix = serial;
        sorted_prefix.sort_unstable();
        prop_assert_eq!(
            &limited.result.tuples,
            &sorted_prefix,
            "seed {} threads {} k {}: execute_limited must be the serial sorted prefix",
            seed,
            threads,
            k
        );
    }
}

/// Acceptance (ISSUE 5): `msj --threads N --limit k` semantics on a
/// workload whose plan re-indexes — the parallel stream prefix must be
/// byte-identical (content *and* order) to the serial stream's, for every
/// tested thread count and k, including k beyond Z.
#[test]
fn reindexed_limit_prefix_matches_serial_byte_for_byte() {
    let (db, q) = skewed_instance(120, 120);
    let p = plan(&db, &q).unwrap();
    assert!(p.is_reindexed(), "precondition: non-identity GAO");
    let full: Vec<Tuple> = p.stream(&db).unwrap().collect();
    assert!(full.len() > 16, "needs a non-trivial output");
    let prepared = p.prepare_exec(&db).unwrap();
    let db = Arc::new(db);
    for threads in [2, 4, 8] {
        for k in [1, 2, 7, full.len() - 1, full.len(), full.len() + 5] {
            let serial: Vec<Tuple> = full.iter().take(k).cloned().collect();
            let par: Vec<Tuple> = prepared.stream_parallel(&db, threads, Some(k)).collect();
            assert_eq!(par, serial, "threads={threads} k={k}");
        }
    }
}

/// Acceptance (ISSUE 5): cancelling the merge after `k` tuples skips most
/// of the suffix's probe work on a re-indexed plan — the work counters,
/// not wall-clock, prove the heap's cancellation fires.
#[test]
fn merge_cancellation_after_k_skips_probe_work_on_reindexed_plan() {
    let (db, q) = skewed_instance(4000, 4000);
    let p = plan(&db, &q).unwrap();
    assert!(p.is_reindexed());
    let full = p.execute_parallel(&db, 4).unwrap();
    assert!(full.result.tuples.len() > 1000);
    let limited = p.clone().sharded(4).execute_limited(&db, Some(3)).unwrap();
    assert!(limited.truncated);
    assert!(
        limited.result.stats.probe_points * 2 < full.result.stats.probe_points,
        "merge cancellation must skip most probe work: {} vs {}",
        limited.result.stats.probe_points,
        full.result.stats.probe_points
    );
    assert!(
        limited.shards.iter().any(|s| !s.completed),
        "capped or cancelled shards must be flagged"
    );
}

/// Acceptance (ISSUE 4): a parallel stream consumed for one tuple and
/// finished must stop all workers early — the total probe work stays far
/// below a full parallel run's, proving shards were cancelled rather
/// than materialized.
#[test]
fn limit_one_parallel_stream_cancels_all_workers() {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", 0..20_000)).unwrap();
    let s = db.add(builder::unary("S", 0..20_000)).unwrap();
    let q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
    let p = plan(&db, &q).unwrap();
    let db = Arc::new(db);
    let full = p.execute_parallel(&db, 4).unwrap();
    assert_eq!(full.result.tuples.len(), 20_000);

    // Stream with a per-shard limit of 1, take one tuple, finish.
    let prepared = p.prepare_exec(&db).unwrap();
    let mut stream = prepared.stream_parallel(&db, 4, Some(1));
    assert_eq!(stream.next(), Some(vec![0]));
    let report = stream.finish();
    assert!(
        report.stats.probe_points * 4 < full.result.stats.probe_points,
        "limit-1 stream must skip almost all probe work: {} vs {}",
        report.stats.probe_points,
        full.result.stats.probe_points
    );
    assert!(
        report.stats.outputs < 64,
        "no shard materialized beyond its cap: {} outputs",
        report.stats.outputs
    );
    assert!(
        report.shards.iter().any(|s| !s.completed),
        "capped or cancelled shards must be flagged"
    );
    // The report covers every planned shard task, cancelled ones with
    // zero counters, and the sum still reconciles.
    let mut sum = ExecStats::new();
    for s in &report.shards {
        sum.merge(&s.stats);
    }
    assert_eq!(sum, report.stats);
}

/// The same cancellation through the engine front door: a `--threads`
/// plus `--limit` statement stream stops after its rows without running
/// the remaining shards.
#[test]
fn engine_parallel_stream_with_limit_terminates_early() {
    use minesweeper_join::engine::{Engine, ExecOptions};
    let mut e = Engine::new();
    e.load_tsv(
        "R",
        &(0..20_000).map(|i| format!("{i}\n")).collect::<String>(),
    )
    .unwrap();
    e.load_tsv(
        "S",
        &(0..20_000).map(|i| format!("{i}\n")).collect::<String>(),
    )
    .unwrap();
    let stmt = e.prepare("R(x), S(x)").unwrap();
    let full_stats = stmt
        .execute(&ExecOptions::default().with_threads(4).with_stats())
        .unwrap()
        .stats
        .unwrap();
    let stream = stmt
        .stream(&ExecOptions::default().with_threads(4).with_limit(1))
        .unwrap();
    let rows: Vec<_> = stream.collect();
    assert_eq!(rows.len(), 1, "limit enforced");
    // A fresh stream, finished after one row, exposes the counters.
    let mut stream = stmt
        .stream(&ExecOptions::default().with_threads(4).with_limit(1))
        .unwrap();
    assert!(stream.next().is_some());
    let (stats, shards) = stream.finish();
    assert!(
        stats.probe_points * 4 < full_stats.probe_points,
        "parallel stream limit must cancel shard work: {} vs {}",
        stats.probe_points,
        full_stats.probe_points
    );
    let shards = shards.expect("parallel path reports shards");
    assert!(shards.iter().any(|s| !s.completed));
}
