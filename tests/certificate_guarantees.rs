//! The paper's quantitative guarantees, asserted as scaling laws on the
//! instance families of the evaluation.

use minesweeper_join::baselines::{generic_join, leapfrog_triejoin, yannakakis};
use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::triangle::triangle_query;
use minesweeper_join::core::{minesweeper_join, set_intersection, triangle_join};
use minesweeper_join::storage::{builder, Database, TrieRelation, Val};
use minesweeper_join::workloads::appendix_j::hidden_certificate_instance;
use minesweeper_join::workloads::intersection::blocks;
use minesweeper_join::workloads::prop53::qw_instance;

/// Theorem 2.7 on the block-intersection family: N fixed, |C| = Θ(N/b) —
/// probe counts must scale with 1/b.
#[test]
fn theorem_2_7_work_tracks_certificate_not_input() {
    let n: Val = 1 << 12;
    let probes: Vec<u64> = [4i64, 32, 256]
        .iter()
        .map(|&b| {
            let sets = blocks(n, b);
            let refs: Vec<&TrieRelation> = sets.iter().collect();
            let res = set_intersection(&refs);
            assert!(res.tuples.is_empty());
            res.stats.probe_points
        })
        .collect();
    // 8x smaller certificate ⇒ ~8x fewer probes (allow 4x..16x).
    for w in probes.windows(2) {
        let ratio = w[0] as f64 / w[1] as f64;
        assert!((4.0..=16.0).contains(&ratio), "{probes:?}");
    }
}

/// Appendix J: Minesweeper linear in M, worst-case-optimal baselines
/// quadratic (measured via machine-independent work counters).
#[test]
fn appendix_j_separation_in_work_counters() {
    let m = 4;
    let mut ms_probes = Vec::new();
    let mut lftj_seeks = Vec::new();
    let mut nprr_comparisons = Vec::new();
    let mut yann_touches = Vec::new();
    for chunk in [16i64, 32, 64] {
        let inst = hidden_certificate_instance(m, chunk);
        let ms = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        ms_probes.push(ms.stats.probe_points);
        let lf = leapfrog_triejoin(&inst.db, &inst.query).unwrap();
        lftj_seeks.push(lf.stats.seeks);
        let np = generic_join(&inst.db, &inst.query).unwrap();
        nprr_comparisons.push(np.stats.comparisons);
        let ya = yannakakis(&inst.db, &inst.query).unwrap();
        yann_touches.push(ya.stats.comparisons + ya.stats.intermediate_tuples);
    }
    // Minesweeper ~linear: doubling M at most ~2.6x.
    for w in ms_probes.windows(2) {
        assert!(
            (w[1] as f64) < 2.6 * w[0] as f64,
            "minesweeper superlinear: {ms_probes:?}"
        );
    }
    // Baselines ~quadratic: doubling M at least 3x.
    for (name, series) in [
        ("lftj", &lftj_seeks),
        ("nprr", &nprr_comparisons),
        ("yannakakis", &yann_touches),
    ] {
        for w in series.windows(2) {
            assert!(
                w[1] as f64 > 3.0 * w[0] as f64,
                "{name} sub-quadratic: {series:?}"
            );
        }
    }
}

/// Proposition 5.3: Minesweeper's CDS merge work on Q₂ is Ω(m²) while the
/// certificate upper bound is O(m) — probes stay linear, backtracks do
/// not.
#[test]
fn prop_5_3_merge_lower_bound() {
    let mut backtracks = Vec::new();
    let mut probes = Vec::new();
    for m in [8i64, 16, 32] {
        let inst = qw_instance(2, m);
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::General).unwrap();
        assert!(res.tuples.is_empty());
        backtracks.push(res.stats.backtracks);
        probes.push(res.stats.probe_points);
    }
    for w in backtracks.windows(2) {
        assert!(w[1] as f64 >= 3.0 * w[0] as f64, "{backtracks:?}");
    }
    for w in probes.windows(2) {
        assert!(w[1] as f64 <= 2.6 * w[0] as f64, "{probes:?}");
    }
}

/// Theorem 5.4: on the hard triangle instance, the dyadic CDS's Next-call
/// count grows ~linearly while the generic CDS's grows ~quadratically.
#[test]
fn theorem_5_4_dyadic_vs_generic_cds() {
    fn hard(
        m: Val,
    ) -> (
        Database,
        minesweeper_join::storage::RelId,
        minesweeper_join::storage::RelId,
        minesweeper_join::storage::RelId,
    ) {
        let mut db = Database::new();
        let mut pairs = Vec::new();
        for a in 1..=m {
            for b in 1..=m {
                pairs.push((a, b));
            }
        }
        let r = db.add(builder::binary("R", pairs)).unwrap();
        let s = db
            .add(builder::binary("S", (1..=m).map(|b| (b, 1))))
            .unwrap();
        let t = db
            .add(builder::binary("T", (1..=m).map(|a| (a, 2))))
            .unwrap();
        (db, r, s, t)
    }
    let mut generic_next = Vec::new();
    let mut dyadic_next = Vec::new();
    for m in [16i64, 32, 64] {
        let (db, r, s, t) = hard(m);
        let q = triangle_query(r, s, t);
        let gen = minesweeper_join(&db, &q, ProbeMode::General).unwrap();
        let tri = triangle_join(&db, r, s, t).unwrap();
        assert!(gen.tuples.is_empty() && tri.tuples.is_empty());
        generic_next.push(gen.stats.cds_next_calls);
        dyadic_next.push(tri.stats.cds_next_calls);
    }
    // Generic: ≥3x per doubling. Dyadic: ≤2.8x per doubling.
    for w in generic_next.windows(2) {
        assert!(w[1] as f64 >= 3.0 * w[0] as f64, "generic {generic_next:?}");
    }
    for w in dyadic_next.windows(2) {
        assert!(w[1] as f64 <= 2.8 * w[0] as f64, "dyadic {dyadic_next:?}");
    }
    // And at m = 64 the dyadic CDS must do substantially less total work.
    assert!(
        generic_next[2] > 2 * dyadic_next[2],
        "generic {generic_next:?} vs dyadic {dyadic_next:?}"
    );
}

/// Proposition 2.5's flavor, empirically: the FindGap count never exceeds
/// the Prop 2.6 canonical bound by more than the paper's 4^r·2^n query
/// factor on β-acyclic runs (loose sanity envelope, constants included).
#[test]
fn theorem_3_2_findgap_envelope() {
    use minesweeper_join::core::canonical_certificate_size;
    let mut rng = 0xabcdu64;
    let mut next = move |m: u64| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng % m
    };
    for _ in 0..10 {
        let mut db = Database::new();
        let e1 = db
            .add(builder::binary(
                "E1",
                (0..30).map(|_| (next(10) as Val, next(10) as Val)),
            ))
            .unwrap();
        let e2 = db
            .add(builder::binary(
                "E2",
                (0..30).map(|_| (next(10) as Val, next(10) as Val)),
            ))
            .unwrap();
        let q = minesweeper_join::core::Query::new(3)
            .atom(e1, &[0, 1])
            .atom(e2, &[1, 2]);
        let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
        let ub = canonical_certificate_size(&db, &q).unwrap();
        let z = res.tuples.len() as u64;
        // Theorem 3.2: probes ≤ O(2^r |C|) + Z with r = 2, plus slack for
        // small constants.
        assert!(
            res.stats.probe_points <= 8 * ub + 4 * z + 16,
            "probes {} vs bound from ub {} z {}",
            res.stats.probe_points,
            ub,
            z
        );
    }
}
