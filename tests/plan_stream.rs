//! Integration tests of the plan/execute split and the streaming executor:
//! plans are built without execution, streams terminate early with
//! measurably less probe work, and mid-stream statistics are live.

use minesweeper_join::core::{execute, naive_join, plan, Query};
use minesweeper_join::storage::{builder, Database, Tuple, Val};

/// Example B.2's shape scaled up: `R = [N]`, `S = {(N, 10i)}` — certificate
/// `O(1)` but `Z = N`, the worst case for a materialize-then-truncate
/// `LIMIT k`.
fn z_much_bigger_than_k(n: Val) -> (Database, Query) {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", 1..=n)).unwrap();
    let s = db
        .add(builder::binary("S", (1..=n).map(|i| (n, 10 * i))))
        .unwrap();
    let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]);
    (db, q)
}

/// The acceptance criterion for the streaming executor:
/// `plan → stream → take(k)` must do strictly less probe work (fewer
/// `probe_points` *and* fewer `find_gap_calls`) than a full `execute()`
/// when `Z ≫ k`.
#[test]
fn stream_take_k_does_strictly_less_work_than_execute() {
    let n: Val = 2000;
    let k = 5usize;
    let (db, q) = z_much_bigger_than_k(n);

    let p = plan(&db, &q).unwrap();
    let mut stream = p.stream(&db).unwrap();
    let first_k: Vec<Tuple> = stream.by_ref().take(k).collect();
    assert_eq!(first_k.len(), k);
    let early = stream.stats();

    let full = execute(&db, &q).unwrap();
    assert_eq!(full.result.tuples.len(), n as usize, "Z = N");
    let total = full.result.stats;

    assert!(
        early.probe_points < total.probe_points,
        "take({k}) probed {} points, full run {}",
        early.probe_points,
        total.probe_points
    );
    assert!(
        early.find_gap_calls < total.find_gap_calls,
        "take({k}) made {} FindGap calls, full run {}",
        early.find_gap_calls,
        total.find_gap_calls
    );
    // Not just less — *asymptotically* less: the skipped suffix is ~N
    // tuples, so the early stop must be two orders of magnitude cheaper
    // here.
    assert!(
        early.probe_points * 100 < total.probe_points,
        "early {} vs total {}",
        early.probe_points,
        total.probe_points
    );
}

#[test]
fn plan_is_reusable_and_deterministic() {
    let (db, q) = z_much_bigger_than_k(50);
    let p = plan(&db, &q).unwrap();
    // Stream twice and execute twice off one plan; all runs agree.
    let s1: Vec<Tuple> = p.stream(&db).unwrap().collect();
    let s2: Vec<Tuple> = p.stream(&db).unwrap().collect();
    assert_eq!(s1, s2);
    let e1 = p.execute(&db).unwrap().result.tuples;
    let e2 = p.execute(&db).unwrap().result.tuples;
    assert_eq!(e1, e2);
    let mut sorted = s1;
    sorted.sort();
    assert_eq!(sorted, e1);
}

#[test]
fn stream_matches_naive_on_reindexed_plans() {
    // Example B.7's query forces a non-identity NEO, so the stream has to
    // translate tuples back to the original numbering on the fly.
    let mut db = Database::new();
    let mut rb = minesweeper_join::storage::RelationBuilder::new("R", 3);
    for a in 1..=5 {
        for b in 1..=5 {
            rb.push(&[a, b, (a * b) % 4 + 1]);
        }
    }
    let r = db.add(rb.build().unwrap()).unwrap();
    let s = db
        .add(builder::binary("S", (1..=5).flat_map(|a| [(a, 1), (a, 3)])))
        .unwrap();
    let t = db
        .add(builder::binary("T", (1..=5).flat_map(|b| [(b, 1), (b, 3)])))
        .unwrap();
    let q = Query::new(3)
        .atom(r, &[0, 1, 2])
        .atom(s, &[0, 2])
        .atom(t, &[1, 2]);
    let p = plan(&db, &q).unwrap();
    assert!(p.is_reindexed());
    let mut got: Vec<Tuple> = p.stream(&db).unwrap().collect();
    got.sort();
    assert_eq!(got, naive_join(&db, &q).unwrap());
}

#[test]
fn mid_stream_stats_are_monotone_and_final() {
    let (db, q) = z_much_bigger_than_k(200);
    let p = plan(&db, &q).unwrap();
    let mut stream = p.stream(&db).unwrap();
    let mut last_probe_points = 0;
    let mut yielded = 0u64;
    while let Some(_t) = stream.next() {
        yielded += 1;
        let s = stream.stats();
        assert_eq!(s.outputs, yielded, "outputs counts yielded tuples");
        assert!(
            s.probe_points >= last_probe_points,
            "counters never move backwards"
        );
        last_probe_points = s.probe_points;
        if yielded == 10 {
            break;
        }
    }
    // Draining the rest still works after a pause-and-inspect.
    let rest: Vec<Tuple> = stream.by_ref().collect();
    assert_eq!(yielded as usize + rest.len(), 200);
    assert!(stream.is_exhausted());
}

#[test]
fn exhausted_stream_stats_match_batch_execute() {
    let (db, q) = z_much_bigger_than_k(100);
    let p = plan(&db, &q).unwrap();
    let mut stream = p.stream(&db).unwrap();
    let streamed: Vec<Tuple> = stream.by_ref().collect();
    let batch = p.execute(&db).unwrap();
    assert_eq!(streamed.len(), batch.result.tuples.len());
    // Same plan, same loop: the drained stream's counters equal the batch
    // run's.
    assert_eq!(stream.stats(), batch.result.stats);
}

#[test]
fn plan_borrows_nothing_and_outlives_databases() {
    // A Plan owns its mapping: it can be built, the planning inputs can go
    // away, and it still executes against any compatible database.
    let q;
    let p;
    {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", [1, 2, 3])).unwrap();
        let s = db.add(builder::unary("S", [2, 3, 4])).unwrap();
        q = Query::new(1).atom(r, &[0]).atom(s, &[0]);
        p = plan(&db, &q).unwrap();
        // db dropped here.
    }
    let mut db2 = Database::new();
    db2.add(builder::unary("R", [10, 20])).unwrap();
    db2.add(builder::unary("S", [20, 30])).unwrap();
    let got: Vec<Tuple> = p.stream(&db2).unwrap().collect();
    assert_eq!(got, vec![vec![20]]);
}
