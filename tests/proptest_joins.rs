//! Property-based tests: randomized databases and constraint streams,
//! checked against models and the naive join.

use proptest::prelude::*;

use minesweeper_join::baselines::{adaptive_intersection, leapfrog_triejoin};
use minesweeper_join::cds::{
    Constraint, ConstraintTree, IntervalSet, Pattern, ProbeMode, ProbeStats,
};
use minesweeper_join::core::{
    minesweeper_join, naive_join, reindex_for_gao, set_intersection, triangle_join, Query,
};
use minesweeper_join::storage::{builder, Database, TrieRelation, Val};

fn pairs_strategy(max_len: usize, dom: Val) -> impl Strategy<Value = Vec<(Val, Val)>> {
    prop::collection::vec((0..dom, 0..dom), 0..max_len)
}

fn vals_strategy(max_len: usize, dom: Val) -> impl Strategy<Value = Vec<Val>> {
    prop::collection::vec(0..dom, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Minesweeper (chain mode) equals the naive join on random bow-ties.
    #[test]
    fn bowtie_matches_naive(
        r in vals_strategy(10, 12),
        s in pairs_strategy(30, 12),
        t in vals_strategy(10, 12),
    ) {
        let mut db = Database::new();
        let rid = db.add(builder::unary("R", r)).unwrap();
        let sid = db.add(builder::binary("S", s)).unwrap();
        let tid = db.add(builder::unary("T", t)).unwrap();
        let q = Query::new(2).atom(rid, &[0]).atom(sid, &[0, 1]).atom(tid, &[1]);
        let mut got = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap().tuples;
        got.sort();
        prop_assert_eq!(got, naive_join(&db, &q).unwrap());
    }

    /// Minesweeper (general mode) equals the naive join on random
    /// triangles, and the dyadic triangle join agrees too.
    #[test]
    fn triangle_matches_naive(e in pairs_strategy(40, 10)) {
        let mut db = Database::new();
        let r = db.add(builder::binary("R", e.clone())).unwrap();
        let s = db.add(builder::binary("S", e.clone())).unwrap();
        let t = db.add(builder::binary("T", e)).unwrap();
        let q = Query::new(3).atom(r, &[0, 1]).atom(s, &[1, 2]).atom(t, &[0, 2]);
        let expect = naive_join(&db, &q).unwrap();
        let mut got = minesweeper_join(&db, &q, ProbeMode::General).unwrap().tuples;
        got.sort();
        prop_assert_eq!(&got, &expect);
        let mut tri = triangle_join(&db, r, s, t).unwrap().tuples;
        tri.sort();
        prop_assert_eq!(&tri, &expect);
    }

    /// Two-hop path: Minesweeper ≡ LFTJ ≡ naive.
    #[test]
    fn path_matches_lftj(
        e1 in pairs_strategy(25, 9),
        e2 in pairs_strategy(25, 9),
    ) {
        let mut db = Database::new();
        let a = db.add(builder::binary("E1", e1)).unwrap();
        let b = db.add(builder::binary("E2", e2)).unwrap();
        let q = Query::new(3).atom(a, &[0, 1]).atom(b, &[1, 2]);
        let expect = naive_join(&db, &q).unwrap();
        let mut ms = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap().tuples;
        ms.sort();
        prop_assert_eq!(&ms, &expect);
        let mut lf = leapfrog_triejoin(&db, &q).unwrap().tuples;
        lf.sort();
        prop_assert_eq!(&lf, &expect);
    }

    /// Set intersection: Minesweeper ≡ DLM-adaptive ≡ sorted-set model.
    #[test]
    fn intersection_matches_model(
        a in vals_strategy(40, 60),
        b in vals_strategy(40, 60),
        c in vals_strategy(40, 60),
    ) {
        use std::collections::BTreeSet;
        let model: Vec<Val> = {
            let sa: BTreeSet<_> = a.iter().copied().collect();
            let sb: BTreeSet<_> = b.iter().copied().collect();
            let sc: BTreeSet<_> = c.iter().copied().collect();
            sa.intersection(&sb).copied().filter(|v| sc.contains(v)).collect()
        };
        let ra = builder::unary("A", a);
        let rb = builder::unary("B", b);
        let rc = builder::unary("C", c);
        let refs: Vec<&TrieRelation> = vec![&ra, &rb, &rc];
        let ms: Vec<Val> = set_intersection(&refs).tuples.iter().map(|t| t[0]).collect();
        prop_assert_eq!(&ms, &model);
        let ad: Vec<Val> =
            adaptive_intersection(&refs).tuples.iter().map(|t| t[0]).collect();
        prop_assert_eq!(&ad, &model);
    }

    /// Re-indexing under a random GAO permutation preserves join
    /// semantics.
    #[test]
    fn gao_reindex_preserves_semantics(
        e1 in pairs_strategy(20, 8),
        e2 in pairs_strategy(20, 8),
        perm_seed in 0usize..6,
    ) {
        let perms = [
            [0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let order = perms[perm_seed];
        let mut db = Database::new();
        let a = db.add(builder::binary("E1", e1)).unwrap();
        let b = db.add(builder::binary("E2", e2)).unwrap();
        let q = Query::new(3).atom(a, &[0, 1]).atom(b, &[1, 2]);
        let expect = naive_join(&db, &q).unwrap();
        let (db2, q2) = reindex_for_gao(&db, &q, &order).unwrap();
        let res = minesweeper_join(&db2, &q2, ProbeMode::General).unwrap();
        // Translate back: output column i holds original attribute
        // order[i].
        let mut inv = [0usize; 3];
        for (i, &o) in order.iter().enumerate() {
            inv[o] = i;
        }
        let mut mapped: Vec<Vec<Val>> = res
            .tuples
            .iter()
            .map(|t| (0..3).map(|o| t[inv[o]]).collect())
            .collect();
        mapped.sort();
        prop_assert_eq!(mapped, expect);
    }

    /// The interval set matches a naive bit-set model under arbitrary
    /// insertion sequences.
    #[test]
    fn interval_set_model(ops in prop::collection::vec((0i64..64, 0i64..8), 1..40)) {
        let mut s = IntervalSet::new();
        let mut model = [false; 80];
        for (lo, len) in ops {
            let hi = lo + len;
            s.insert_closed(lo, hi);
            for v in lo..=hi {
                model[v as usize] = true;
            }
            for v in 0..72 {
                prop_assert_eq!(s.covers(v), model[v as usize]);
            }
            for v in 0..72 {
                let expect = (v..80).find(|&u| !model[u as usize]).unwrap_or(80);
                prop_assert_eq!(s.next(v).min(80), expect);
            }
        }
    }

    /// `get_probe_point` only returns active tuples, never repeats them
    /// once excluded, and terminates on a boxed space.
    #[test]
    fn probe_points_are_active_and_fresh(
        cs in prop::collection::vec(
            (0usize..3, prop::collection::vec((0i64..5, prop::bool::ANY), 0..2), -1i64..5, 0i64..5),
            0..10
        )
    ) {
        let mut cds = ConstraintTree::new(3, ProbeMode::General);
        let mut st = ProbeStats::default();
        // Box to [0,4]^3.
        for d in 0..3usize {
            let p = Pattern::all_star(d);
            cds.insert_constraint(&Constraint::new(p.clone(), minesweeper_join::cds::NEG_INF, 0), &mut st);
            cds.insert_constraint(&Constraint::new(p, 4, minesweeper_join::cds::POS_INF), &mut st);
        }
        let mut constraints = Vec::new();
        for (depth, pat, lo, len) in cs {
            let comps: Vec<minesweeper_join::cds::PatternComp> = pat
                .into_iter()
                .take(depth)
                .map(|(v, star)| if star {
                    minesweeper_join::cds::PatternComp::Star
                } else {
                    minesweeper_join::cds::PatternComp::Eq(v)
                })
                .collect();
            if comps.len() < depth {
                continue;
            }
            let c = Constraint::new(Pattern(comps), lo, lo + len);
            cds.insert_constraint(&c, &mut st);
            constraints.push(c);
        }
        let mut seen = std::collections::HashSet::new();
        let mut guard = 0;
        while let Some(t) = cds.get_probe_point(&mut st) {
            prop_assert!(!constraints.iter().any(|c| c.covers(&t)), "covered probe {:?}", t);
            prop_assert!(seen.insert(t.clone()), "repeated probe {:?}", t);
            cds.insert_constraint(&Constraint::point_exclusion(&t), &mut st);
            guard += 1;
            prop_assert!(guard <= 200, "runaway");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The write path's lazy merge: a versioned relation under random
    /// insert/delete batches equals a set model, and its [`MergeView`]
    /// is observationally equivalent to the materialized snapshot —
    /// same tuples, same `FindGap` gaps at every probe.
    ///
    /// [`MergeView`]: minesweeper_join::storage::MergeView
    #[test]
    fn versioned_relation_merge_matches_set_model(
        base in pairs_strategy(25, 9),
        ins in pairs_strategy(12, 9),
        del in pairs_strategy(12, 9),
        probes in prop::collection::vec(-1i64..11, 1..10),
    ) {
        use std::collections::BTreeSet;
        use minesweeper_join::storage::{ExecStats, VersionedRelation, WriteOp};

        let base_set: BTreeSet<(Val, Val)> = base.iter().copied().collect();
        let mut model: BTreeSet<(Val, Val)> = base_set.clone();
        let mut rel = VersionedRelation::from_base(builder::binary("R", base_set));

        let mut ops: Vec<WriteOp> = Vec::new();
        for &(a, b) in &ins {
            ops.push(WriteOp::Insert(vec![a, b]));
            model.insert((a, b));
        }
        for &(a, b) in &del {
            ops.push(WriteOp::Delete(vec![a, b]));
            model.remove(&(a, b));
        }
        rel.apply(&ops).unwrap();

        // Logical content equals the model, via the materialized
        // snapshot and via the lazy merge iterator alike.
        let expect: Vec<Vec<Val>> = model.iter().map(|&(a, b)| vec![a, b]).collect();
        prop_assert_eq!(rel.snapshot().to_tuples(), expect.clone());
        let view = rel.merge_view();
        prop_assert_eq!(view.iter_tuples().collect::<Vec<_>>(), expect);
        prop_assert_eq!(rel.len(), model.len());

        // FindGap through the merge view is bit-identical to FindGap on
        // the materialized trie: at the root, and one level down under
        // every root child.
        let snap = rel.snapshot().clone();
        let mut s1 = ExecStats::new();
        let mut s2 = ExecStats::new();
        for &a in &probes {
            prop_assert_eq!(
                view.find_gap(&view.root(), a, &mut s1),
                snap.find_gap(snap.root(), a, &mut s2)
            );
        }
        for &(x, _) in &model {
            let mnode = view.child_by_value(&view.root(), x, &mut s1).unwrap();
            let tnode = snap.child(snap.root(), snap.find_gap(snap.root(), x, &mut s2).lo_coord);
            for &a in &probes {
                prop_assert_eq!(
                    view.find_gap(&mnode, a, &mut s1),
                    snap.find_gap(tnode, a, &mut s2)
                );
            }
        }
    }
}
