//! Integration tests of the `Engine` / `PreparedStatement` front door:
//! plan + re-index caching, typed dictionary-encoded values, uniform
//! `ExecOptions` dispatch, and the structured explain.

use proptest::prelude::*;

use minesweeper_join::baselines::algorithms;
use minesweeper_join::core::naive_join;
use minesweeper_join::engine::{Engine, EngineError, ExecOptions};
use minesweeper_join::storage::{builder, ColumnType, Database, Val, Value};
use minesweeper_join::text::TextError;

fn sv(s: &str) -> Value {
    Value::from(s)
}

/// Airports with an out-of-NEO ternary so the planner must re-index.
fn routes_engine() -> Engine {
    let mut e = Engine::new();
    // Leg(origin, dest, carrier): written (A,B,C) order is not a NEO for
    // the query below joined with ByCarrier(A,C) and ToCity(B,C).
    e.add_relation(
        "Leg",
        &[ColumnType::Str, ColumnType::Str, ColumnType::Str],
        [
            vec![sv("jfk"), sv("lhr"), sv("ba")],
            vec![sv("jfk"), sv("lhr"), sv("aa")],
            vec![sv("sfo"), sv("nrt"), sv("ua")],
            vec![sv("sfo"), sv("lhr"), sv("ba")],
        ],
    )
    .unwrap();
    e.add_relation(
        "ByCarrier",
        &[ColumnType::Str, ColumnType::Str],
        [
            vec![sv("jfk"), sv("ba")],
            vec![sv("sfo"), sv("ba")],
            vec![sv("sfo"), sv("ua")],
        ],
    )
    .unwrap();
    e.add_relation(
        "ToCity",
        &[ColumnType::Str, ColumnType::Str],
        [
            vec![sv("lhr"), sv("ba")],
            vec![sv("nrt"), sv("ua")],
            vec![sv("lhr"), sv("aa")],
        ],
    )
    .unwrap();
    e
}

const ROUTES_QUERY: &str = "Leg(a, b, c), ByCarrier(a, c), ToCity(b, c)";

/// Acceptance: a repeated prepare/execute performs zero planning and zero
/// re-indexing — the second statement is a cache hit with the *same* plan
/// identity, its explain says so, and nothing about the plan changed.
#[test]
fn repeated_execute_reuses_plan_and_reindexed_relations() {
    let e = routes_engine();
    let opts = ExecOptions::default().with_stats();
    let (first_rows, first_id, first_gao) = {
        let stmt = e.prepare(ROUTES_QUERY).unwrap();
        assert!(!stmt.cache_hit(), "first prepare builds the entry");
        assert!(stmt.plan().is_reindexed(), "query must force a re-index");
        let ep = stmt.explain(&opts).unwrap();
        let cache = ep.cache.clone().expect("engine explain carries cache info");
        assert!(!cache.hit);
        // Two executes on one statement: same rows, no re-prepare.
        let r1 = stmt.execute(&opts).unwrap();
        let r2 = stmt.execute(&opts).unwrap();
        assert_eq!(r1.rows, r2.rows);
        (r1.rows, stmt.plan_id(), stmt.plan().gao().clone())
    };
    // A fresh prepare of the same shape — different variable names — hits
    // the cache: identical plan identity, identical decisions, and the
    // explain reports the hit.
    let stmt = e
        .prepare("Leg(x, y, z), ByCarrier(x, z), ToCity(y, z)")
        .unwrap();
    assert!(stmt.cache_hit());
    assert_eq!(stmt.plan_id(), first_id, "plan identity is stable");
    assert_eq!(stmt.plan().gao(), &first_gao);
    let ep = stmt.explain(&opts).unwrap();
    assert_eq!(
        ep.cache.as_ref().map(|c| (c.hit, c.plan_id)),
        Some((true, first_id))
    );
    assert!(ep.to_json().contains("\"hit\":true"), "{}", ep.to_json());
    let rows = stmt.execute(&opts).unwrap().rows;
    assert_eq!(rows, first_rows);
}

/// The same `ExecOptions` dispatch drives every evaluator — serial,
/// sharded, and each baseline — and all agree on a string workload.
#[test]
fn all_algorithms_dispatch_uniformly_through_execute() {
    let e = routes_engine();
    let stmt = e.prepare(ROUTES_QUERY).unwrap();
    let expect = stmt.execute(&ExecOptions::default()).unwrap().rows;
    assert!(!expect.is_empty());
    for algo in algorithms() {
        let opts = ExecOptions::default()
            .with_algo(algo.name())
            .with_threads(3);
        let got = stmt.execute(&opts).unwrap();
        assert_eq!(got.rows, expect, "{} disagrees", algo.name());
    }
    // Unknown names fail fast.
    assert!(matches!(
        stmt.execute(&ExecOptions::default().with_algo("quantum")),
        Err(EngineError::UnknownAlgorithm(_))
    ));
}

/// Streaming respects the limit and the serial stream is lazy.
#[test]
fn stream_and_limit_paths() {
    let mut e = Engine::new();
    e.load_tsv("R", &(0..200).map(|i| format!("{i}\n")).collect::<String>())
        .unwrap();
    e.load_tsv(
        "S",
        &(0..200).map(|i| format!("{}\n", i * 2)).collect::<String>(),
    )
    .unwrap();
    let stmt = e.prepare("R(x), S(x)").unwrap();
    let full = stmt.execute(&ExecOptions::default()).unwrap();
    assert_eq!(full.rows.len(), 100);
    assert!(!full.truncated);
    // Serial limit: pushdown, truncated flag set, fewer probe points.
    let limited = stmt
        .execute(&ExecOptions::default().with_limit(5).with_stats())
        .unwrap();
    assert_eq!(limited.rows, full.rows[..5].to_vec());
    assert!(limited.truncated);
    let full_stats = stmt
        .execute(&ExecOptions::default().with_stats())
        .unwrap()
        .stats
        .unwrap();
    assert!(
        limited.stats.unwrap().probe_points * 4 < full_stats.probe_points,
        "limit pushdown must skip probe work"
    );
    // Parallel limit: bounded per shard, truncated to the cap.
    let par = stmt
        .execute(
            &ExecOptions::default()
                .with_threads(4)
                .with_limit(5)
                .with_stats(),
        )
        .unwrap();
    assert_eq!(par.rows, full.rows[..5].to_vec(), "identity GAO prefix");
    assert!(par.truncated);
    for s in par.shards.as_deref().unwrap_or(&[]) {
        assert!(s.stats.outputs <= 5, "per-shard cap holds");
    }
    // Stream: lazy, decoded, capped.
    let streamed: Vec<_> = stmt
        .stream(&ExecOptions::default().with_limit(3))
        .unwrap()
        .collect();
    assert_eq!(streamed, full.rows[..3].to_vec());
}

/// Engine-level prepare errors keep the text layer's diagnostics.
#[test]
fn prepare_error_paths() {
    let e = routes_engine();
    assert!(matches!(
        e.prepare("Nope(x, y)"),
        Err(EngineError::Text(TextError::UnknownRelation(n))) if n == "Nope"
    ));
    assert!(matches!(
        e.prepare("ByCarrier(x)"),
        Err(EngineError::Text(TextError::AtomArity {
            atom: 1,
            relation_arity: 2,
            ..
        }))
    ));
    assert!(matches!(
        e.prepare("ByCarrier(x y)"),
        Err(EngineError::Text(TextError::BadQuery(_)))
    ));
    assert!(matches!(
        e.prepare("ByCarrier(x, y), ToCity(y, x)"),
        Err(EngineError::Text(TextError::BadQuery(msg))) if msg.contains("GAO order")
    ));
    assert!(matches!(e.prepare(""), Err(EngineError::Text(_))));
}

/// The explain carries the shard strategy exactly when the options select
/// the parallel engine.
#[test]
fn explain_reports_shards_and_algorithm() {
    let e = routes_engine();
    let stmt = e.prepare(ROUTES_QUERY).unwrap();
    let serial = stmt.explain(&ExecOptions::default()).unwrap();
    assert!(serial.shards.is_none());
    let par = stmt
        .explain(&ExecOptions::default().with_threads(4))
        .unwrap();
    assert_eq!(par.shards.as_ref().map(|s| s.threads), Some(4));
    assert!(par.render().contains("parallel: up to 4"));
    let base = stmt
        .explain(&ExecOptions::default().with_algo("lftj"))
        .unwrap();
    assert_eq!(base.algorithm, "leapfrog", "aliases resolve in explain");
}

fn flights_engine() -> Engine {
    let mut e = Engine::new();
    e.add_relation(
        "F",
        &[ColumnType::Str, ColumnType::Str],
        [
            vec![sv("jfk"), sv("lhr")],
            vec![sv("lhr"), sv("nrt")],
            vec![sv("sfo"), sv("jfk")],
            vec![sv("jfk"), sv("nrt")],
            vec![sv("sfo"), sv("lhr")],
        ],
    )
    .unwrap();
    e
}

/// A literal may occupy an earlier column than an already-bound variable:
/// the engine must find a GAO placing the hidden literal attribute before
/// `b` instead of rejecting the query.
#[test]
fn literal_before_a_bound_variable_is_accepted() {
    let e = flights_engine();
    let stmt = e.prepare("F(a, b), F(\"jfk\", b)").unwrap();
    assert_eq!(stmt.columns(), vec!["a", "b"]);
    let res = stmt.execute(&ExecOptions::default()).unwrap();
    let rows: Vec<Vec<&str>> = res
        .rows
        .iter()
        .map(|r| r.iter().map(|v| v.as_str().unwrap()).collect())
        .collect();
    // Destinations jfk reaches (lhr, nrt), joined with every origin that
    // also reaches them.
    assert!(rows.contains(&vec!["jfk", "lhr"]), "{rows:?}");
    assert!(rows.contains(&vec!["sfo", "lhr"]), "{rows:?}");
    assert!(rows.contains(&vec!["jfk", "nrt"]), "{rows:?}");
    assert!(rows.contains(&vec!["lhr", "nrt"]), "{rows:?}");
    assert_eq!(rows.len(), 4, "{rows:?}");
}

#[test]
fn parallel_limit_equal_to_result_size_is_not_truncated() {
    let e = flights_engine();
    let stmt = e.prepare("F(a, b)").unwrap();
    let full = stmt.execute(&ExecOptions::default()).unwrap();
    let exact = stmt
        .execute(
            &ExecOptions::default()
                .with_threads(4)
                .with_limit(full.rows.len()),
        )
        .unwrap();
    assert_eq!(exact.rows, full.rows);
    assert!(!exact.truncated, "nothing was cut");
    let cut = stmt
        .execute(&ExecOptions::default().with_threads(4).with_limit(1))
        .unwrap();
    assert!(cut.truncated);
    assert_eq!(cut.rows.len(), 1);
}

#[test]
fn serial_limited_stats_exclude_the_truncation_peek() {
    let e = flights_engine();
    let stmt = e.prepare("F(a, b)").unwrap();
    let limited = stmt
        .execute(&ExecOptions::default().with_limit(2).with_stats())
        .unwrap();
    assert!(limited.truncated);
    assert_eq!(
        limited.stats.unwrap().outputs,
        2,
        "stats reflect only the shown prefix, not the peek"
    );
}

#[test]
fn stale_query_handle_errors_instead_of_panicking() {
    use minesweeper_join::core::Query;
    use minesweeper_join::storage::RelId;
    let e = flights_engine();
    let bogus = Query::new(1).atom(RelId(99), &[0]);
    assert!(matches!(
        e.prepare_query(&bogus),
        Err(EngineError::Storage(_))
    ));
}

/// Brute-force string-level natural join of the two binary relations
/// (shared second/first column), the model for the property test below.
fn string_model_join(r: &[(String, String)], s: &[(String, String)]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = Vec::new();
    for (a, b) in r {
        for (b2, c) in s {
            if b == b2 {
                let row = vec![a.clone(), b.clone(), c.clone()];
                if !out.contains(&row) {
                    out.push(row);
                }
            }
        }
    }
    out
}

/// A small word pool so joins actually match; no word parses as an
/// integer, keeping the columns Str-typed.
const WORDS: [&str; 6] = ["ash", "birch", "cedar", "doug", "elm", "fir"];

fn word_strategy() -> impl Strategy<Value = String> {
    (0..WORDS.len()).prop_map(|i| WORDS[i].to_string())
}

fn string_pairs(max_len: usize) -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((word_strategy(), word_strategy()), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dictionary round-trip: encoding strings to dense ids, joining in
    /// the integer domain, and decoding at the boundary equals (a) the
    /// string-level model join and (b) a naive join over the relabelled
    /// integer relations, tuple for tuple.
    #[test]
    fn dictionary_round_trip_matches_relabelled_run(
        r in string_pairs(16),
        s in string_pairs(16),
    ) {
        if r.is_empty() || s.is_empty() {
            return Ok(());
        }
        let mut e = Engine::new();
        e.add_relation(
            "R",
            &[ColumnType::Str, ColumnType::Str],
            r.iter().map(|(a, b)| vec![sv(a), sv(b)]),
        )
        .unwrap();
        e.add_relation(
            "S",
            &[ColumnType::Str, ColumnType::Str],
            s.iter().map(|(b, c)| vec![sv(b), sv(c)]),
        )
        .unwrap();
        let stmt = e.prepare("R(a, b), S(b, c)").unwrap();
        let rows = stmt.execute(&ExecOptions::default()).unwrap().rows;
        let got: Vec<Vec<String>> = rows
            .iter()
            .map(|row| row.iter().map(|v| v.as_str().unwrap().to_string()).collect())
            .collect();

        // (a) Same *set* as the string-level model join.
        let mut model = string_model_join(&r, &s);
        let mut got_sorted = got.clone();
        model.sort();
        got_sorted.sort();
        prop_assert_eq!(&got_sorted, &model);

        // (b) Byte-identical to the i64-relabelled run: encode the same
        // tuples with the engine's dictionary, join natively, decode.
        let enc = |w: &str| e.dict().id_of(w).expect("every loaded word interned");
        let mut db = Database::new();
        let rid = db
            .add(builder::binary("R", r.iter().map(|(a, b)| (enc(a), enc(b)))))
            .unwrap();
        let sid = db
            .add(builder::binary("S", s.iter().map(|(b, c)| (enc(b), enc(c)))))
            .unwrap();
        let q = minesweeper_join::core::Query::new(3)
            .atom(rid, &[0, 1])
            .atom(sid, &[1, 2]);
        let relabelled: Vec<Vec<String>> = naive_join(&db, &q)
            .unwrap()
            .iter()
            .map(|t| {
                t.iter()
                    .map(|&v: &Val| e.dict().resolve(v).unwrap().to_string())
                    .collect()
            })
            .collect();
        prop_assert_eq!(&got, &relabelled, "decoded order mirrors the encoded order");
    }
}
