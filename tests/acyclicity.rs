//! Classification of the paper's example queries in the acyclicity
//! hierarchy (Appendix A) and GAO selection behavior.

use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::{choose_gao, Query};
use minesweeper_join::hypergraph::{
    elimination_width, find_beta_cycle, is_alpha_acyclic, is_beta_acyclic,
    is_nested_elimination_order, nested_elimination_order, treewidth_exact,
};
use minesweeper_join::storage::{builder, Database, RelId, RelationBuilder};

fn dummy_db() -> (Database, RelId, RelId, RelId) {
    let mut db = Database::new();
    let u1 = db.add(builder::unary("U1", [1])).unwrap();
    let b1 = db.add(builder::binary("B1", [(1, 1)])).unwrap();
    let t1 = db
        .add(
            RelationBuilder::new("T1", 3)
                .tuple(&[1, 1, 1])
                .build()
                .unwrap(),
        )
        .unwrap();
    (db, u1, b1, t1)
}

#[test]
fn triangle_is_doubly_cyclic() {
    let (_, _, b1, _) = dummy_db();
    let q = Query::new(3)
        .atom(b1, &[0, 1])
        .atom(b1, &[1, 2])
        .atom(b1, &[0, 2]);
    let h = q.hypergraph();
    assert!(!is_alpha_acyclic(&h));
    assert!(!is_beta_acyclic(&h));
    assert!(find_beta_cycle(&h).is_some());
    assert_eq!(treewidth_exact(&h, 8), 2);
    let choice = choose_gao(&q, 8);
    assert_eq!(choice.mode, ProbeMode::General);
    assert_eq!(choice.width, 2);
}

#[test]
fn triangle_plus_u_separates_alpha_from_beta() {
    // Example A.1: adding U(A,B,C) gives α-acyclicity but not
    // β-acyclicity.
    let (_, _, b1, t1) = dummy_db();
    let q = Query::new(3)
        .atom(b1, &[0, 1])
        .atom(b1, &[1, 2])
        .atom(b1, &[0, 2])
        .atom(t1, &[0, 1, 2]);
    let h = q.hypergraph();
    assert!(is_alpha_acyclic(&h));
    assert!(!is_beta_acyclic(&h));
}

#[test]
fn paper_evaluation_queries_are_beta_acyclic() {
    let (_, u1, b1, _) = dummy_db();
    // Star.
    let star = Query::new(4)
        .atom(u1, &[0])
        .atom(b1, &[0, 1])
        .atom(b1, &[0, 2])
        .atom(b1, &[0, 3])
        .atom(u1, &[1])
        .atom(u1, &[2])
        .atom(u1, &[3]);
    // 3-path.
    let path = Query::new(4)
        .atom(b1, &[0, 1])
        .atom(b1, &[1, 2])
        .atom(b1, &[2, 3])
        .atom(u1, &[0])
        .atom(u1, &[1])
        .atom(u1, &[2])
        .atom(u1, &[3]);
    // Tree.
    let tree = Query::new(5)
        .atom(b1, &[0, 1])
        .atom(b1, &[1, 2])
        .atom(b1, &[1, 3])
        .atom(b1, &[3, 4])
        .atom(u1, &[0])
        .atom(u1, &[2])
        .atom(u1, &[3])
        .atom(u1, &[4]);
    for (name, q) in [("star", &star), ("path", &path), ("tree", &tree)] {
        let h = q.hypergraph();
        assert!(is_beta_acyclic(&h), "{name}");
        let neo = nested_elimination_order(&h).unwrap();
        assert!(is_nested_elimination_order(&h, &neo), "{name}");
        // The identity GAO used by the harness is itself a NEO.
        let n = q.n_attrs;
        let identity: Vec<usize> = (0..n).collect();
        assert!(is_nested_elimination_order(&h, &identity), "{name}");
        assert_eq!(elimination_width(&h, &identity), 1, "{name}");
    }
}

#[test]
fn example_b7_neo_is_found_even_though_identity_fails() {
    let (_, _, b1, t1) = dummy_db();
    let q = Query::new(3)
        .atom(t1, &[0, 1, 2])
        .atom(b1, &[0, 2])
        .atom(b1, &[1, 2]);
    let h = q.hypergraph();
    assert!(!is_nested_elimination_order(&h, &[0, 1, 2]));
    assert!(is_nested_elimination_order(&h, &[2, 0, 1]));
    let choice = choose_gao(&q, 8);
    assert_eq!(choice.mode, ProbeMode::Chain);
    assert!(is_nested_elimination_order(&h, &choice.order));
}

#[test]
fn bounded_treewidth_path_vs_clique() {
    let (_, _, b1, _) = dummy_db();
    // Path of length 5: treewidth 1.
    let mut q = Query::new(6);
    for i in 0..5 {
        q = q.atom(b1, &[i, i + 1]);
    }
    assert_eq!(treewidth_exact(&q.hypergraph(), 8), 1);
    // 4-clique of binary atoms: treewidth 3.
    let mut q = Query::new(4);
    for i in 0..4 {
        for j in (i + 1)..4 {
            q = q.atom(b1, &[i, j]);
        }
    }
    assert_eq!(treewidth_exact(&q.hypergraph(), 8), 3);
    let choice = choose_gao(&q, 8);
    assert_eq!(choice.width, 3);
}

#[test]
fn four_cycle_widths() {
    let (_, _, b1, _) = dummy_db();
    let q = Query::new(4)
        .atom(b1, &[0, 1])
        .atom(b1, &[1, 2])
        .atom(b1, &[2, 3])
        .atom(b1, &[0, 3]);
    let h = q.hypergraph();
    assert!(!is_alpha_acyclic(&h));
    assert!(!is_beta_acyclic(&h));
    assert_eq!(treewidth_exact(&h, 8), 2);
}
