//! Cross-algorithm output equivalence: every entry in the `Algorithm`
//! registry must compute the same natural join as the naive oracle, across
//! query shapes (acyclic and cyclic) and randomized databases.
//!
//! The harness is registry-driven: adding an algorithm to
//! `minesweeper_baselines::registry::algorithms` automatically enrolls it
//! here. Algorithms that do not support a query shape (`supports` returns
//! false, e.g. Yannakakis on β-cyclic queries) are skipped for that shape
//! but must be exercised by at least one other shape.

use std::collections::HashSet;

use minesweeper_join::baselines::algorithms;
use minesweeper_join::core::{naive_join, Query};
use minesweeper_join::storage::{builder, Database, Val};

struct Rng(u64);

impl Rng {
    fn next(&mut self, m: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % m
    }
    fn pairs(&mut self, count: u64, dom: u64) -> Vec<(Val, Val)> {
        (0..count)
            .map(|_| (self.next(dom) as Val, self.next(dom) as Val))
            .collect()
    }
    fn vals(&mut self, count: u64, dom: u64) -> Vec<Val> {
        (0..count).map(|_| self.next(dom) as Val).collect()
    }
}

/// Runs every supporting registry algorithm on `(db, q)` and checks each
/// against the naive oracle. Returns the names exercised.
fn check_registry(db: &Database, q: &Query, label: &str) -> Vec<&'static str> {
    let expect = naive_join(db, q).unwrap();
    let mut exercised = Vec::new();
    for algo in algorithms() {
        if !algo.supports(q) {
            continue;
        }
        let got = algo
            .run(db, q)
            .unwrap_or_else(|e| panic!("{} failed on {label}: {e}", algo.name()));
        assert_eq!(got.tuples, expect, "{} output on {label}", algo.name());
        assert!(
            got.tuples.windows(2).all(|w| w[0] < w[1]),
            "{} violates the sorted-output contract on {label}",
            algo.name()
        );
        exercised.push(algo.name());
    }
    exercised
}

#[test]
fn bowtie_shape() {
    let mut rng = Rng(0xb0a71e);
    for trial in 0..15 {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", rng.vals(8, 12))).unwrap();
        let s = db.add(builder::binary("S", rng.pairs(30, 12))).unwrap();
        let t = db.add(builder::unary("T", rng.vals(8, 12))).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        let names = check_registry(&db, &q, &format!("bowtie {trial}"));
        assert_eq!(
            names.len(),
            algorithms().len(),
            "every algorithm supports the β-acyclic bowtie"
        );
    }
}

#[test]
fn two_hop_path_shape() {
    let mut rng = Rng(0x9a7b);
    for trial in 0..15 {
        let mut db = Database::new();
        let e1 = db.add(builder::binary("E1", rng.pairs(25, 9))).unwrap();
        let e2 = db.add(builder::binary("E2", rng.pairs(25, 9))).unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        check_registry(&db, &q, &format!("path2 {trial}"));
    }
}

#[test]
fn triangle_shape() {
    let mut rng = Rng(0x7419);
    for trial in 0..15 {
        let mut db = Database::new();
        let e = db.add(builder::binary("E", rng.pairs(35, 10))).unwrap();
        let q = Query::new(3)
            .atom(e, &[0, 1])
            .atom(e, &[1, 2])
            .atom(e, &[0, 2]);
        let names = check_registry(&db, &q, &format!("triangle {trial}"));
        assert!(
            !names.contains(&"yannakakis"),
            "the triangle query is not α-acyclic"
        );
        assert!(names.contains(&"minesweeper"));
    }
}

#[test]
fn star_shape_with_shared_index() {
    let mut rng = Rng(0x57a7);
    for trial in 0..10 {
        let mut db = Database::new();
        let s = db.add(builder::binary("S", rng.pairs(30, 8))).unwrap();
        let r1 = db.add(builder::unary("R1", rng.vals(5, 8))).unwrap();
        let r2 = db.add(builder::unary("R2", rng.vals(5, 8))).unwrap();
        let r3 = db.add(builder::unary("R3", rng.vals(5, 8))).unwrap();
        let q = Query::new(3)
            .atom(r1, &[0])
            .atom(s, &[0, 1])
            .atom(s, &[0, 2])
            .atom(r2, &[1])
            .atom(r3, &[2]);
        check_registry(&db, &q, &format!("star {trial}"));
    }
}

#[test]
fn four_cycle_shape() {
    // β-cyclic AND α-cyclic: exercises general mode + treewidth path.
    let mut rng = Rng(0x4c1c1e);
    for trial in 0..10 {
        let mut db = Database::new();
        let e1 = db.add(builder::binary("E1", rng.pairs(20, 7))).unwrap();
        let e2 = db.add(builder::binary("E2", rng.pairs(20, 7))).unwrap();
        let e3 = db.add(builder::binary("E3", rng.pairs(20, 7))).unwrap();
        let e4 = db.add(builder::binary("E4", rng.pairs(20, 7))).unwrap();
        let q = Query::new(4)
            .atom(e1, &[0, 1])
            .atom(e2, &[1, 2])
            .atom(e3, &[2, 3])
            .atom(e4, &[0, 3]);
        check_registry(&db, &q, &format!("4cycle {trial}"));
    }
}

#[test]
fn ternary_atom_shape() {
    // Example B.7's query: R(A,B,C) ⋈ S(A,C) ⋈ T(B,C).
    let mut rng = Rng(0xb7);
    for trial in 0..10 {
        let mut db = Database::new();
        let mut rb = minesweeper_join::storage::RelationBuilder::new("R", 3);
        for _ in 0..30 {
            rb.push(&[rng.next(6) as Val, rng.next(6) as Val, rng.next(6) as Val]);
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db.add(builder::binary("S", rng.pairs(15, 6))).unwrap();
        let t = db.add(builder::binary("T", rng.pairs(15, 6))).unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        check_registry(&db, &q, &format!("b7 {trial}"));
    }
}

#[test]
fn random_tree_shaped_acyclic_queries() {
    // β-acyclic by construction: random trees over the attributes with one
    // binary relation per edge, occasionally a unary leaf filter.
    let mut rng = Rng(0x7ee5);
    for trial in 0..12 {
        let n_attrs = 3 + (rng.next(3) as usize); // 3..=5
        let mut db = Database::new();
        let mut q = Query::new(n_attrs);
        for child in 1..n_attrs {
            let parent = (rng.next(child as u64)) as usize;
            let rel = db
                .add(builder::binary(format!("E{child}"), rng.pairs(22, 7)))
                .unwrap();
            let (lo, hi) = (parent.min(child), parent.max(child));
            q = q.atom(rel, &[lo, hi]);
        }
        if rng.next(2) == 1 {
            let rel = db.add(builder::unary("U", rng.vals(5, 7))).unwrap();
            let a = (rng.next(n_attrs as u64)) as usize;
            q = q.atom(rel, &[a]);
        }
        check_registry(&db, &q, &format!("random tree {trial}"));
    }
}

#[test]
fn random_cyclic_queries() {
    // A random chordless cycle of length 4 or 5 (β-cyclic), with random
    // data: exercises the general probe mode and width-bounded planning
    // for every registry entry that supports cyclic queries.
    let mut rng = Rng(0xcc1e);
    for trial in 0..8 {
        let len = 4 + (rng.next(2) as usize); // 4 or 5
        let mut db = Database::new();
        let mut q = Query::new(len);
        for i in 0..len {
            let j = (i + 1) % len;
            let rel = db
                .add(builder::binary(format!("E{i}"), rng.pairs(18, 6)))
                .unwrap();
            let (lo, hi) = (i.min(j), i.max(j));
            q = q.atom(rel, &[lo, hi]);
        }
        check_registry(&db, &q, &format!("cycle-{len} {trial}"));
    }
}

#[test]
fn empty_relations_everywhere() {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", [])).unwrap();
    let s = db.add(builder::binary("S", [(1, 2)])).unwrap();
    let t = db.add(builder::unary("T", [2])).unwrap();
    let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
    check_registry(&db, &q, "empty");
}

#[test]
fn dense_overlap_large_output() {
    // Small domain, dense relations ⇒ large output relative to input.
    let mut rng = Rng(0xd05e);
    let mut db = Database::new();
    let e1 = db.add(builder::binary("E1", rng.pairs(40, 5))).unwrap();
    let e2 = db.add(builder::binary("E2", rng.pairs(40, 5))).unwrap();
    let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
    let expect = naive_join(&db, &q).unwrap();
    assert!(
        expect.len() > 40,
        "want a dense output, got {}",
        expect.len()
    );
    check_registry(&db, &q, "dense");
}

#[test]
fn registry_names_are_unique_and_resolvable() {
    let mut seen = HashSet::new();
    for algo in algorithms() {
        assert!(seen.insert(algo.name()), "duplicate name {}", algo.name());
        assert!(
            minesweeper_join::baselines::lookup(algo.name()).is_some(),
            "{} must resolve through lookup",
            algo.name()
        );
    }
}
