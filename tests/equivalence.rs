//! Cross-algorithm output equivalence: every join algorithm in the
//! workspace must compute the same natural join, across query shapes and
//! randomized databases.

use minesweeper_join::baselines::{
    generic_join, hash_join_plan, leapfrog_triejoin, sort_merge_plan, yannakakis,
};
use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::{minesweeper_join, naive_join, Query};
use minesweeper_join::hypergraph::is_alpha_acyclic;
use minesweeper_join::storage::{builder, Database, Tuple, Val};

struct Rng(u64);

impl Rng {
    fn next(&mut self, m: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % m
    }
    fn pairs(&mut self, count: u64, dom: u64) -> Vec<(Val, Val)> {
        (0..count)
            .map(|_| (self.next(dom) as Val, self.next(dom) as Val))
            .collect()
    }
    fn vals(&mut self, count: u64, dom: u64) -> Vec<Val> {
        (0..count).map(|_| self.next(dom) as Val).collect()
    }
}

fn check_all(db: &Database, q: &Query, mode: ProbeMode, label: &str) {
    let expect = naive_join(db, q).unwrap();
    let sorted = |mut v: Vec<Tuple>| {
        v.sort();
        v
    };
    assert_eq!(
        sorted(minesweeper_join(db, q, mode).unwrap().tuples),
        expect,
        "minesweeper {label}"
    );
    assert_eq!(
        sorted(leapfrog_triejoin(db, q).unwrap().tuples),
        expect,
        "lftj {label}"
    );
    assert_eq!(
        sorted(generic_join(db, q).unwrap().tuples),
        expect,
        "nprr {label}"
    );
    assert_eq!(
        sorted(hash_join_plan(db, q).unwrap().tuples),
        expect,
        "hash {label}"
    );
    assert_eq!(
        sorted(sort_merge_plan(db, q).unwrap().tuples),
        expect,
        "sort-merge {label}"
    );
    if is_alpha_acyclic(&q.hypergraph()) {
        assert_eq!(
            sorted(yannakakis(db, q).unwrap().tuples),
            expect,
            "yannakakis {label}"
        );
    }
}

#[test]
fn bowtie_shape() {
    let mut rng = Rng(0xb0a71e);
    for trial in 0..15 {
        let mut db = Database::new();
        let r = db.add(builder::unary("R", rng.vals(8, 12))).unwrap();
        let s = db.add(builder::binary("S", rng.pairs(30, 12))).unwrap();
        let t = db.add(builder::unary("T", rng.vals(8, 12))).unwrap();
        let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
        check_all(&db, &q, ProbeMode::Chain, &format!("bowtie {trial}"));
    }
}

#[test]
fn two_hop_path_shape() {
    let mut rng = Rng(0x9a7b);
    for trial in 0..15 {
        let mut db = Database::new();
        let e1 = db.add(builder::binary("E1", rng.pairs(25, 9))).unwrap();
        let e2 = db.add(builder::binary("E2", rng.pairs(25, 9))).unwrap();
        let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
        check_all(&db, &q, ProbeMode::Chain, &format!("path2 {trial}"));
    }
}

#[test]
fn triangle_shape() {
    let mut rng = Rng(0x7419);
    for trial in 0..15 {
        let mut db = Database::new();
        let e = db.add(builder::binary("E", rng.pairs(35, 10))).unwrap();
        let q = Query::new(3).atom(e, &[0, 1]).atom(e, &[1, 2]).atom(e, &[0, 2]);
        check_all(&db, &q, ProbeMode::General, &format!("triangle {trial}"));
    }
}

#[test]
fn star_shape_with_shared_index() {
    let mut rng = Rng(0x57a7);
    for trial in 0..10 {
        let mut db = Database::new();
        let s = db.add(builder::binary("S", rng.pairs(30, 8))).unwrap();
        let r1 = db.add(builder::unary("R1", rng.vals(5, 8))).unwrap();
        let r2 = db.add(builder::unary("R2", rng.vals(5, 8))).unwrap();
        let r3 = db.add(builder::unary("R3", rng.vals(5, 8))).unwrap();
        let q = Query::new(3)
            .atom(r1, &[0])
            .atom(s, &[0, 1])
            .atom(s, &[0, 2])
            .atom(r2, &[1])
            .atom(r3, &[2]);
        check_all(&db, &q, ProbeMode::Chain, &format!("star {trial}"));
    }
}

#[test]
fn four_cycle_shape() {
    // β-cyclic AND α-cyclic: exercises general mode + treewidth path.
    let mut rng = Rng(0x4c1c1e);
    for trial in 0..10 {
        let mut db = Database::new();
        let e1 = db.add(builder::binary("E1", rng.pairs(20, 7))).unwrap();
        let e2 = db.add(builder::binary("E2", rng.pairs(20, 7))).unwrap();
        let e3 = db.add(builder::binary("E3", rng.pairs(20, 7))).unwrap();
        let e4 = db.add(builder::binary("E4", rng.pairs(20, 7))).unwrap();
        let q = Query::new(4)
            .atom(e1, &[0, 1])
            .atom(e2, &[1, 2])
            .atom(e3, &[2, 3])
            .atom(e4, &[0, 3]);
        check_all(&db, &q, ProbeMode::General, &format!("4cycle {trial}"));
    }
}

#[test]
fn ternary_atom_shape() {
    // Example B.7's query: R(A,B,C) ⋈ S(A,C) ⋈ T(B,C).
    let mut rng = Rng(0xb7);
    for trial in 0..10 {
        let mut db = Database::new();
        let mut rb = minesweeper_join::storage::RelationBuilder::new("R", 3);
        for _ in 0..30 {
            rb.push(&[
                rng.next(6) as Val,
                rng.next(6) as Val,
                rng.next(6) as Val,
            ]);
        }
        let r = db.add(rb.build().unwrap()).unwrap();
        let s = db.add(builder::binary("S", rng.pairs(15, 6))).unwrap();
        let t = db.add(builder::binary("T", rng.pairs(15, 6))).unwrap();
        let q = Query::new(3)
            .atom(r, &[0, 1, 2])
            .atom(s, &[0, 2])
            .atom(t, &[1, 2]);
        // (A,B,C) is not a NEO for this query: use general mode.
        check_all(&db, &q, ProbeMode::General, &format!("b7 {trial}"));
    }
}

#[test]
fn empty_relations_everywhere() {
    let mut db = Database::new();
    let r = db.add(builder::unary("R", [])).unwrap();
    let s = db.add(builder::binary("S", [(1, 2)])).unwrap();
    let t = db.add(builder::unary("T", [2])).unwrap();
    let q = Query::new(2).atom(r, &[0]).atom(s, &[0, 1]).atom(t, &[1]);
    check_all(&db, &q, ProbeMode::Chain, "empty");
}

#[test]
fn dense_overlap_large_output() {
    // Small domain, dense relations ⇒ large output relative to input.
    let mut rng = Rng(0xd05e);
    let mut db = Database::new();
    let e1 = db.add(builder::binary("E1", rng.pairs(40, 5))).unwrap();
    let e2 = db.add(builder::binary("E2", rng.pairs(40, 5))).unwrap();
    let q = Query::new(3).atom(e1, &[0, 1]).atom(e2, &[1, 2]);
    let expect = naive_join(&db, &q).unwrap();
    assert!(expect.len() > 40, "want a dense output, got {}", expect.len());
    check_all(&db, &q, ProbeMode::Chain, "dense");
}
