//! End-to-end replays of the paper's worked examples.

use minesweeper_join::baselines::yannakakis;
use minesweeper_join::cds::ProbeMode;
use minesweeper_join::core::{bowtie_join, minesweeper_join, naive_join};
use minesweeper_join::workloads::examples::{
    example_2_1, example_b1, example_b2, example_b3, example_b6, example_d1, example_i3,
};

/// Appendix D.1: the 4-atom query over R, S = [N]², T = {(2,2),(2,4)},
/// U = {1,3} joins to nothing, and Minesweeper discovers that with a
/// handful of probes regardless of N.
#[test]
fn appendix_d1_full_run() {
    for n in [4, 8, 20] {
        let inst = example_d1(n);
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty(), "N={n}");
        assert!(
            res.stats.probe_points <= 12,
            "N={n}: probes {}",
            res.stats.probe_points
        );
        // Matches the naive join and Yannakakis.
        assert!(naive_join(&inst.db, &inst.query).unwrap().is_empty());
        assert!(yannakakis(&inst.db, &inst.query).unwrap().tuples.is_empty());
    }
}

/// Example 2.1: the witnesses are {1,(1,i)} and {2,(2,i)} — 2N outputs.
#[test]
fn example_2_1_witness_structure() {
    let n = 30;
    let inst = example_2_1(n);
    let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
    assert_eq!(res.tuples.len() as i64, 2 * n);
    assert!(res.tuples.iter().all(|t| t[0] == 1 || t[0] == 2));
}

/// Example B.1: |C| = O(1) — the FindGap count must not grow with N.
#[test]
fn example_b1_certificate_constant_in_n() {
    let mut counts = Vec::new();
    for n in [100, 1_000, 10_000] {
        let inst = example_b1(n);
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert!(res.tuples.is_empty());
        counts.push(res.stats.find_gap_calls);
    }
    assert_eq!(counts[0], counts[1], "{counts:?}");
    assert_eq!(counts[1], counts[2], "{counts:?}");
}

/// Example B.2: Z = N with a constant certificate — work is Θ(Z), and the
/// per-output overhead is constant.
#[test]
fn example_b2_work_linear_in_output() {
    let mut ratios = Vec::new();
    for n in [200, 400, 800] {
        let inst = example_b2(n);
        let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
        assert_eq!(res.tuples.len() as i64, n);
        ratios.push(res.stats.probe_points as f64 / n as f64);
    }
    for r in &ratios {
        assert!(
            *r <= 3.0,
            "per-output probe overhead must be constant: {ratios:?}"
        );
    }
}

/// Examples B.3/B.4: identical data, the GAO flips the certificate from
/// Θ(N²) to Θ(N).
#[test]
fn example_b3_vs_b4_gao_separation() {
    let n = 24;
    let inst = example_b3(n);
    let slow = minesweeper_join(&inst.db, &inst.query, ProbeMode::General).unwrap();
    let (db2, q2) =
        minesweeper_join::core::reindex_for_gao(&inst.db, &inst.query, &[2, 0, 1]).unwrap();
    let fast = minesweeper_join(&db2, &q2, ProbeMode::Chain).unwrap();
    assert!(slow.tuples.is_empty() && fast.tuples.is_empty());
    // Θ(N²) vs Θ(N): demand at least a factor-N/4 separation.
    assert!(
        slow.stats.probe_points > (n as u64 / 4) * fast.stats.probe_points,
        "slow={} fast={}",
        slow.stats.probe_points,
        fast.stats.probe_points
    );
}

/// Example B.6: under GAO (A,B) the certificate is O(1).
#[test]
fn example_b6_constant_under_ab() {
    let inst = example_b6(5_000);
    let res = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
    assert!(res.tuples.is_empty());
    assert!(res.stats.probe_points <= 4);
}

/// Example B.6's flip side: under GAO (B, A) the optimal certificate is
/// Ω(N) — the per-B rows must each be separated (`R[i,N] < S[i,1]` for
/// every i in the paper's account of the reversed instance).
#[test]
fn example_b6_linear_under_ba() {
    let n = 400;
    let inst = example_b6(n);
    // Identity (A,B): constant probes.
    let fast = minesweeper_join(&inst.db, &inst.query, ProbeMode::Chain).unwrap();
    assert!(fast.stats.probe_points <= 4);
    // Reversed (B,A): work must scale with N.
    let (db2, q2) =
        minesweeper_join::core::reindex_for_gao(&inst.db, &inst.query, &[1, 0]).unwrap();
    let slow = minesweeper_join(&db2, &q2, ProbeMode::Chain).unwrap();
    assert!(slow.tuples.is_empty());
    assert!(
        slow.stats.probe_points as i64 >= n / 2,
        "(B,A) order must pay Ω(N): {}",
        slow.stats.probe_points
    );
}

/// Appendix I.3: the bow-tie hidden-certificate instance — specialized
/// Algorithm 9 stays O(1) while N grows.
#[test]
fn appendix_i3_constant_probes() {
    let mut counts = Vec::new();
    for n in [1_000, 10_000, 100_000] {
        let inst = example_i3(n);
        let r = inst.db.relation_by_name("R").unwrap();
        let s = inst.db.relation_by_name("S").unwrap();
        let t = inst.db.relation_by_name("T").unwrap();
        let res = bowtie_join(r, s, t);
        assert!(res.tuples.is_empty());
        counts.push(res.stats.probe_points);
    }
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    assert!(counts[0] <= 6);
}

/// Section 3.2's illustration: R(A,B) ⋈ S(B) with S[4] = 20, S[5] = 28
/// implies the gap constraint ⟨˚,(20,28)⟩ — no output B-value strictly
/// between 20 and 28.
#[test]
fn section_3_2_gap_illustration() {
    use minesweeper_join::storage::{builder, Database};
    let mut db = Database::new();
    let r = db
        .add(builder::binary(
            "R",
            (1..=10).flat_map(|a| (18..=30).map(move |b| (a, b))),
        ))
        .unwrap();
    let s = db
        .add(builder::unary("S", [5, 10, 15, 20, 28, 35]))
        .unwrap();
    let q = minesweeper_join::core::Query::new(2)
        .atom(r, &[0, 1])
        .atom(s, &[1]);
    let res = minesweeper_join(&db, &q, ProbeMode::Chain).unwrap();
    let mut got = res.tuples.clone();
    got.sort();
    assert_eq!(got, naive_join(&db, &q).unwrap());
    assert!(got.iter().all(|t| t[1] == 20 || t[1] == 28));
    assert_eq!(got.len(), 20);
}
