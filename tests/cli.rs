//! End-to-end tests of the `msj` command-line binary.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("msj-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn msj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_msj"))
}

#[test]
fn triangle_listing_via_cli() {
    let edges = write_temp("edges.tsv", "1 2\n2 3\n1 3\n3 4\n2 4\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", edges.display()),
            "--rel",
            &format!("S={}", edges.display()),
            "--rel",
            &format!("T={}", edges.display()),
            "R(a,b), S(b,c), T(a,c)",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# a\tb\tc"));
    assert!(stdout.contains("1\t2\t3"));
    assert!(stdout.contains("2\t3\t4"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("findgap calls"));
}

#[test]
fn limit_streams_and_truncates_output() {
    let r = write_temp("r.tsv", "1\n2\n3\n4\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", r.display()),
            "R(x)",
            "--limit",
            "2",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1\n2\n"),
        "first two tuples shown: {stdout}"
    );
    assert!(
        !stdout.contains("\n3\n"),
        "remainder not materialized: {stdout}"
    );
    assert!(stdout.contains("truncated at 2"), "{stdout}");
    // The streaming executor reports only the probe work actually done.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("# outputs: 2"), "{stderr}");
}

#[test]
fn explain_prints_plan_without_executing() {
    let edges = write_temp("edges2.tsv", "1 2\n2 3\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", edges.display()),
            "--rel",
            &format!("S={}", edges.display()),
            "R(x,y), S(y,z)",
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("R(x, y) ⋈ S(y, z)"), "{stdout}");
    assert!(stdout.contains("probe mode"), "{stdout}");
    assert!(stdout.contains("runtime bound"), "{stdout}");
    assert!(!stdout.contains("1\t2"), "no tuples printed: {stdout}");
}

#[test]
fn algo_registry_entries_agree_on_sorted_output() {
    let edges = write_temp("edges3.tsv", "1 2\n2 3\n1 3\n3 4\n2 4\n");
    let run = |algo: &str| -> String {
        let out = msj()
            .args([
                "--rel",
                &format!("R={}", edges.display()),
                "--rel",
                &format!("S={}", edges.display()),
                "--rel",
                &format!("T={}", edges.display()),
                "R(a,b), S(b,c), T(a,c)",
                "--algo",
                algo,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    // The triangle query is β-cyclic, so Yannakakis sits this one out; all
    // other registry entries must print byte-identical sorted output.
    let expect = run("minesweeper");
    assert!(expect.contains("1\t2\t3"), "{expect}");
    for algo in [
        "leapfrog",
        "generic",
        "hash",
        "sort-merge",
        "nested-loop",
        "naive",
    ] {
        assert_eq!(run(algo), expect, "{algo} differs");
    }
}

#[test]
fn parallel_engine_matches_serial_output_and_reports_shards() {
    let edges = write_temp("edges4.tsv", "1 2\n2 3\n1 3\n3 4\n2 4\n4 5\n3 5\n1 5\n");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "--rel".to_string(),
            format!("R={}", edges.display()),
            "--rel".to_string(),
            format!("S={}", edges.display()),
            "--rel".to_string(),
            format!("T={}", edges.display()),
            "R(a,b), S(b,c), T(a,c)".to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = msj().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    let serial = run(&["--algo", "minesweeper"]);
    let par = run(&["--algo", "minesweeper-par", "--threads", "4"]);
    assert_eq!(
        serial.stdout, par.stdout,
        "parallel output must be byte-identical to serial"
    );
    let threads_only = run(&["--threads", "3"]);
    assert_eq!(serial.stdout, threads_only.stdout, "--threads alone too");
    // `--stats` adds the per-shard breakdown on stderr.
    let stats = run(&["--threads", "3", "--stats"]);
    let stderr = String::from_utf8_lossy(&stats.stderr);
    assert!(stderr.contains("# parallel: 3 worker(s)"), "{stderr}");
    assert!(stderr.contains("shard 0"), "{stderr}");
    // `--explain` mentions the parallel strategy and the merge.
    let explain = run(&["--algo", "minesweeper-par", "--explain"]);
    let stdout = String::from_utf8_lossy(&explain.stdout);
    assert!(stdout.contains("equi-depth shard"), "{stdout}");
    assert!(stdout.contains("merge global-order-heap"), "{stdout}");
    assert!(stdout.contains("probe mode"), "{stdout}");
}

/// Acceptance (ISSUE 5), CLI level: on a path query whose plan re-indexes,
/// `--threads N --limit k` prints stdout byte-identical to the serial
/// `--limit k` stream — the exact serial prefix, truncation marker
/// included.
#[test]
fn parallel_limit_output_is_byte_identical_to_serial_limit() {
    let edges = write_temp(
        "edges_limit.tsv",
        "1 2\n2 3\n1 3\n3 4\n2 4\n4 5\n3 5\n1 5\n",
    );
    let run = |extra: &[&str]| {
        let mut args = vec![
            "--rel".to_string(),
            format!("R={}", edges.display()),
            "--rel".to_string(),
            format!("S={}", edges.display()),
            "R(a,b), S(b,c)".to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = msj().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    for k in ["1", "3", "7"] {
        let serial = run(&["--limit", k]);
        let par = run(&["--threads", "4", "--limit", k]);
        assert_eq!(
            String::from_utf8_lossy(&serial),
            String::from_utf8_lossy(&par),
            "k={k}: parallel --limit must print the serial prefix"
        );
    }
}

#[test]
fn explain_json_is_structured() {
    let edges = write_temp("edges5.tsv", "1 2\n2 3\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", edges.display()),
            "--rel",
            &format!("S={}", edges.display()),
            "R(x,y), S(y,z)",
            "--explain-json",
            "--threads",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"algorithm\":\"minesweeper\""), "{stdout}");
    assert!(
        stdout.contains("\"attr_names\":[\"x\",\"y\",\"z\"]"),
        "{stdout}"
    );
    assert!(stdout.contains("\"runtime_bound\""), "{stdout}");
    assert!(stdout.contains("\"cache\":{\"hit\":false"), "{stdout}");
    assert!(stdout.contains("\"shards\":{\"threads\":4"), "{stdout}");
}

#[test]
fn string_columns_round_trip_through_the_cli() {
    let flights = write_temp("flights.tsv", "jfk lhr\nlhr nrt\nsfo jfk\n");
    let out = msj()
        .args([
            "--rel",
            &format!("F={}", flights.display()),
            "F(a, b), F(b, c)",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# a\tb\tc"), "{stdout}");
    assert!(
        stdout.contains("jfk\tlhr\tnrt"),
        "decoded strings: {stdout}"
    );
    assert!(stdout.contains("sfo\tjfk\tlhr"), "{stdout}");
    // A string literal constrains the position and is hidden from output.
    let lit = msj()
        .args([
            "--rel",
            &format!("F={}", flights.display()),
            "F(a, \"lhr\")",
        ])
        .output()
        .unwrap();
    assert!(lit.status.success());
    let stdout = String::from_utf8_lossy(&lit.stdout);
    assert_eq!(stdout, "# a\njfk\n", "{stdout}");
}

#[test]
fn parallel_limit_streams_and_announces_truncation() {
    let r = write_temp(
        "r4.tsv",
        (1..=64)
            .map(|i| format!("{i}\n"))
            .collect::<String>()
            .as_str(),
    );
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", r.display()),
            "R(x)",
            "--threads",
            "4",
            "--limit",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1\n2\n3\n"), "first three tuples: {stdout}");
    assert!(!stdout.contains("\n4\n"), "capped: {stdout}");
    assert!(stdout.contains("truncated at 3"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("streams the first 3 tuples"),
        "streaming announced: {stderr}"
    );
    assert!(
        stderr.contains("cancels the remaining shard work"),
        "{stderr}"
    );
}

#[test]
fn unknown_algo_is_reported_with_choices() {
    let r = write_temp("r3.tsv", "1\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", r.display()),
            "R(x)",
            "--algo",
            "quantum",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
    assert!(stderr.contains("minesweeper"), "lists choices: {stderr}");
}

#[test]
fn bad_query_is_reported() {
    let r = write_temp("r2.tsv", "1\n");
    let out = msj()
        .args(["--rel", &format!("R={}", r.display()), "Q(x)"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown relation"));
}

#[test]
fn missing_file_is_reported() {
    let out = msj()
        .args(["--rel", "R=/definitely/not/here.tsv", "R(x)"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn usage_on_no_args() {
    let out = msj().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
