//! End-to-end tests of the `msj` command-line binary.

use std::io::Write;
use std::process::Command;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("msj-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn msj() -> Command {
    Command::new(env!("CARGO_BIN_EXE_msj"))
}

#[test]
fn triangle_listing_via_cli() {
    let edges = write_temp("edges.tsv", "1 2\n2 3\n1 3\n3 4\n2 4\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", edges.display()),
            "--rel",
            &format!("S={}", edges.display()),
            "--rel",
            &format!("T={}", edges.display()),
            "R(a,b), S(b,c), T(a,c)",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# a\tb\tc"));
    assert!(stdout.contains("1\t2\t3"));
    assert!(stdout.contains("2\t3\t4"));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("findgap calls"));
}

#[test]
fn limit_truncates_output() {
    let r = write_temp("r.tsv", "1\n2\n3\n4\n");
    let out = msj()
        .args([
            "--rel",
            &format!("R={}", r.display()),
            "R(x)",
            "--limit",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("… 2 more"), "{stdout}");
}

#[test]
fn bad_query_is_reported() {
    let r = write_temp("r2.tsv", "1\n");
    let out = msj()
        .args(["--rel", &format!("R={}", r.display()), "Q(x)"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown relation"));
}

#[test]
fn missing_file_is_reported() {
    let out = msj()
        .args(["--rel", "R=/definitely/not/here.tsv", "R(x)"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn usage_on_no_args() {
    let out = msj().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
