//! Crash-recovery integration tests: the durability contract of
//! `docs/DURABILITY.md`, end to end through `Engine::open_durable`.
//!
//! The model: a durable engine's data directory, killed at *any* byte
//! of the write-ahead log, recovers to exactly the longest prefix of
//! committed batches whose records survived intact — and every
//! registered evaluator returns results byte-identical to an in-memory
//! engine that applied that same prefix and never crashed.

use std::path::{Path, PathBuf};

use minesweeper_join::baselines::algorithm_names;
use minesweeper_join::durability::wal::{list_segments, read_segment_bytes, write_segment_bytes};
use minesweeper_join::durability::{DurabilityOptions, FsyncPolicy};
use minesweeper_join::engine::{DurableBoot, Engine, ExecOptions};
use minesweeper_join::render::body_string;
use minesweeper_join::storage::Value;

use proptest::prelude::*;

/// Integer join every registered evaluator supports.
const CHAIN: &str = "R(a, b), S(b, c)";
/// String self-join exercising the dictionary across recovery.
const HOPS: &str = "F(a, b), F(b, c)";

/// A scratch data directory removed on drop (pass or fail, a fresh run
/// never sees a stale one: the constructor clears leftovers).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("msj-recovery-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn wal_dir(&self) -> PathBuf {
        self.0.join("wal")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Fast options for tests: no fsync (contents still reach the file),
/// no periodic checkpoints unless a test asks for them.
fn opts_nosync() -> DurabilityOptions {
    DurabilityOptions {
        fsync: FsyncPolicy::Never,
        ..DurabilityOptions::default()
    }
}

fn int_rows(pairs: &[(i64, i64)]) -> Vec<Vec<Value>> {
    pairs
        .iter()
        .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
        .collect()
}

fn str_rows(pairs: &[(&str, &str)]) -> Vec<Vec<Value>> {
    pairs
        .iter()
        .map(|&(a, b)| vec![Value::Str(a.to_string()), Value::Str(b.to_string())])
        .collect()
}

/// Seeds the canonical three-relation catalog: two integer relations
/// and a string relation whose cells are hostile to the log's text
/// format (empty cells, `#`, `%`, `;`, tabs, spaces, the `%-` marker).
fn load_initial(e: &mut Engine) {
    e.load_tsv("R", "1 5\n2 7\n4 9\n8 9\n").unwrap();
    e.load_tsv("S", "5 10\n7 11\n9 12\n").unwrap();
    e.load_tsv("F", "jfk sfo\nsfo lax\n").unwrap();
}

/// The deterministic write script. Each step is one committed batch —
/// one WAL record — mixing integer and string relations, inserts,
/// deletes, vacuous deletes, and delete-then-reinsert.
const STEPS: usize = 7;

fn apply_step(e: &Engine, step: usize) {
    match step {
        0 => {
            e.insert("R", int_rows(&[(3, 7), (6, 5)])).unwrap();
        }
        1 => {
            e.delete("R", int_rows(&[(4, 9), (8, 9)])).unwrap();
        }
        2 => {
            e.insert("S", int_rows(&[(9, 13), (5, 2)])).unwrap();
        }
        3 => {
            // Hostile strings: empty cell, comment leader, escape
            // metacharacters, embedded whitespace, the empty-marker.
            e.insert(
                "F",
                str_rows(&[
                    ("lax", "jfk"),
                    ("", "jfk"),
                    ("# not a comment", "sfo"),
                    ("per%cent", "semi;colon"),
                    ("two words", "tab\there"),
                    ("%-", "lax"),
                ]),
            )
            .unwrap();
        }
        4 => {
            e.delete("S", int_rows(&[(9, 12)])).unwrap();
        }
        5 => {
            // One real delete plus a vacuous one (never-interned string):
            // both are logged and must replay to the same no-op.
            e.delete("F", str_rows(&[("", "jfk"), ("nowhere", "jfk")]))
                .unwrap();
        }
        6 => {
            e.insert("R", int_rows(&[(8, 9)])).unwrap();
        }
        _ => unreachable!("script has {STEPS} steps"),
    }
}

/// An in-memory engine that loaded the initial catalog and applied the
/// first `n` script steps — the never-crashed reference.
fn reference(n: usize) -> Engine {
    let mut e = Engine::new();
    load_initial(&mut e);
    for step in 0..n {
        apply_step(&e, step);
    }
    e
}

/// Both query bodies, exactly as the CLI would print them.
fn snapshot(e: &Engine, opts: &ExecOptions) -> String {
    let mut out = String::new();
    for q in [CHAIN, HOPS] {
        out.push_str(&body_string(&e.prepare(q).unwrap(), opts).unwrap());
        out.push('\n');
    }
    out
}

/// Opens a fresh durable directory, loads the catalog, and writes the
/// boot checkpoint — the same sequence `msj serve --data-dir` runs.
fn boot_durable(dir: &Path, options: DurabilityOptions) -> Engine {
    let (mut e, boot) = Engine::open_durable(dir, options).unwrap();
    assert!(matches!(boot, DurableBoot::Fresh), "directory is new");
    load_initial(&mut e);
    let report = e.checkpoint().unwrap().expect("durable engines checkpoint");
    assert_eq!(report.relations, 3);
    e
}

/// Reopens a data directory and returns the engine plus its report.
fn reopen(dir: &Path) -> (Engine, minesweeper_join::engine::RecoveryReport) {
    let (e, boot) = Engine::open_durable(dir, opts_nosync()).unwrap();
    match boot {
        DurableBoot::Recovered(report) => (e, report),
        DurableBoot::Fresh => panic!("expected recovery, directory came up fresh"),
    }
}

/// Every evaluator the build registers, plus the serial and sharded
/// defaults.
fn all_option_sets() -> Vec<ExecOptions> {
    let mut sets = vec![
        ExecOptions::default(),
        ExecOptions::default().with_threads(2),
    ];
    for name in algorithm_names() {
        sets.push(ExecOptions::default().with_algo(name));
    }
    sets
}

/// The acceptance criterion, exhaustively: cut the WAL at **every byte
/// offset** and recover. Each cut must (a) replay exactly the complete
/// newline-terminated records in the surviving prefix, (b) answer
/// byte-identically to a never-crashed engine that applied that many
/// steps, and (c) warn — never fail — when the final record is torn.
#[test]
fn wal_cut_at_every_byte_offset_recovers_the_longest_valid_prefix() {
    let tmp = TempDir::new("every-byte");
    let e = boot_durable(tmp.path(), opts_nosync());
    for step in 0..STEPS {
        apply_step(&e, step);
    }
    drop(e);

    let full = read_segment_bytes(&tmp.wal_dir(), 1).unwrap();
    assert_eq!(
        full.iter().filter(|&&b| b == b'\n').count(),
        STEPS,
        "one WAL record per committed batch"
    );

    // Reference answers for every possible surviving prefix.
    let default_opts = ExecOptions::default();
    let expect: Vec<String> = (0..=STEPS)
        .map(|n| snapshot(&reference(n), &default_opts))
        .collect();

    for cut in 0..=full.len() {
        write_segment_bytes(&tmp.wal_dir(), 1, &full[..cut]).unwrap();
        let (recovered, report) = reopen(tmp.path());
        let survived = full[..cut].iter().filter(|&&b| b == b'\n').count();
        assert_eq!(
            report.replayed_records as usize, survived,
            "cut at byte {cut}: complete records in the prefix replay"
        );
        let torn = cut > 0 && full[cut - 1] != b'\n';
        assert_eq!(
            !report.warnings.is_empty(),
            torn,
            "cut at byte {cut}: a torn tail warns, a clean tail does not ({:?})",
            report.warnings
        );
        assert_eq!(
            snapshot(&recovered, &default_opts),
            expect[survived],
            "cut at byte {cut}: answers equal the never-crashed reference"
        );
    }

    // The untouched log (final loop iteration restored it) recovers the
    // whole script — byte-identical across every registered evaluator.
    let (recovered, report) = reopen(tmp.path());
    assert_eq!(report.replayed_records as usize, STEPS);
    assert!(report.warnings.is_empty());
    let fresh = reference(STEPS);
    for opts in &all_option_sets() {
        assert_eq!(
            snapshot(&recovered, opts),
            snapshot(&fresh, opts),
            "evaluator {:?} threads={} disagrees after recovery",
            opts.algo,
            opts.threads
        );
    }
}

/// Recovery composes: a mid-run checkpoint pins a later WAL position,
/// the tail (including an explicitly logged `COMPACT`) replays on top,
/// relation versions survive exactly, and a recovered engine keeps
/// accepting writes that themselves survive the next reopen.
#[test]
fn mid_run_checkpoint_tail_replay_and_reopen_continuity() {
    let tmp = TempDir::new("mid-ckpt");
    let e = boot_durable(tmp.path(), opts_nosync());
    for step in 0..3 {
        apply_step(&e, step);
    }
    let report = e.checkpoint().unwrap().unwrap();
    assert_eq!(report.id, 2, "boot checkpoint was id 1");
    for step in 3..STEPS {
        apply_step(&e, step);
    }
    let folded = e.compact_logged(None).unwrap();
    assert!(folded >= 1, "the script leaves deltas to fold");
    let versions: Vec<u64> = ["R", "S", "F"]
        .iter()
        .map(|r| e.relation_version(r).unwrap())
        .collect();
    drop(e);

    let (recovered, report) = reopen(tmp.path());
    assert_eq!(
        report.checkpoint_id, 2,
        "recovery starts at the newest checkpoint"
    );
    assert_eq!(
        report.replayed_records as usize,
        (STEPS - 3) + 1,
        "tail batches plus the logged COMPACT replay"
    );
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    let after: Vec<u64> = ["R", "S", "F"]
        .iter()
        .map(|r| recovered.relation_version(r).unwrap())
        .collect();
    assert_eq!(after, versions, "version continuity across recovery");

    let fresh = reference(STEPS);
    for opts in &all_option_sets() {
        assert_eq!(snapshot(&recovered, opts), snapshot(&fresh, opts));
    }

    // The recovered engine is a first-class durable engine: new writes
    // log at the continued LSN and survive another reopen.
    recovered
        .insert("R", int_rows(&[(10, 5), (11, 7)]))
        .unwrap();
    drop(recovered);
    let (again, report) = reopen(tmp.path());
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    fresh.insert("R", int_rows(&[(10, 5), (11, 7)])).unwrap();
    assert_eq!(
        snapshot(&again, &ExecOptions::default()),
        snapshot(&fresh, &ExecOptions::default())
    );
}

/// A torn tail is truncated, and the reopened log continues from the
/// cut: post-recovery writes land after the truncation point and the
/// directory reopens cleanly — no gap, no stale bytes resurfacing.
#[test]
fn torn_tail_truncates_then_writing_resumes_at_the_cut() {
    let tmp = TempDir::new("torn-resume");
    let e = boot_durable(tmp.path(), opts_nosync());
    for step in 0..STEPS {
        apply_step(&e, step);
    }
    drop(e);

    // Chop into the final record: recovery keeps STEPS - 1 batches.
    let full = read_segment_bytes(&tmp.wal_dir(), 1).unwrap();
    write_segment_bytes(&tmp.wal_dir(), 1, &full[..full.len() - 3]).unwrap();

    let (recovered, report) = reopen(tmp.path());
    assert_eq!(report.replayed_records as usize, STEPS - 1);
    assert!(
        report.warnings.iter().any(|w| w.contains("truncated")),
        "the torn tail surfaces as a truncation warning: {:?}",
        report.warnings
    );
    apply_step(&recovered, STEPS - 1); // redo the lost final step
    recovered.delete("S", int_rows(&[(5, 10)])).unwrap();
    drop(recovered);

    let (again, report) = reopen(tmp.path());
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    let fresh = reference(STEPS);
    fresh.delete("S", int_rows(&[(5, 10)])).unwrap();
    assert_eq!(
        snapshot(&again, &ExecOptions::default()),
        snapshot(&fresh, &ExecOptions::default())
    );
}

/// Mid-log damage — a flipped byte with intact records *after* it — is
/// corruption, not a torn tail: recovery refuses rather than silently
/// dropping committed batches.
#[test]
fn mid_log_corruption_is_refused() {
    let tmp = TempDir::new("mid-corrupt");
    let e = boot_durable(tmp.path(), opts_nosync());
    for step in 0..STEPS {
        apply_step(&e, step);
    }
    drop(e);

    let mut bytes = read_segment_bytes(&tmp.wal_dir(), 1).unwrap();
    bytes[2] ^= 0xff; // inside the first record's checksum
    write_segment_bytes(&tmp.wal_dir(), 1, &bytes).unwrap();

    let err = Engine::open_durable(tmp.path(), opts_nosync())
        .expect_err("mid-log corruption must refuse, not drop committed data");
    let msg = err.to_string();
    assert!(msg.contains("corrupt"), "error names the corruption: {msg}");
}

/// Small segments force rotation; recovery walks the whole chain, and a
/// checkpoint releases the segments nothing retained still pins.
#[test]
fn rotated_segments_recover_and_checkpoints_release_them() {
    let tmp = TempDir::new("rotate");
    let options = DurabilityOptions {
        fsync: FsyncPolicy::Never,
        rotate_bytes: 96,
        ..DurabilityOptions::default()
    };
    let e = boot_durable(tmp.path(), options);
    for step in 0..STEPS {
        apply_step(&e, step);
    }
    drop(e);

    let segments = list_segments(&tmp.wal_dir()).unwrap();
    assert!(
        segments.len() > 1,
        "96-byte segments rotate under the script: {segments:?}"
    );

    let (recovered, report) = reopen(tmp.path());
    assert_eq!(report.replayed_records as usize, STEPS);
    let fresh = reference(STEPS);
    assert_eq!(
        snapshot(&recovered, &ExecOptions::default()),
        snapshot(&fresh, &ExecOptions::default())
    );

    // Two more checkpoints: with keep = 2, only positions the retained
    // pair pins stay; the early segments are pruned.
    recovered.checkpoint().unwrap().unwrap();
    recovered.checkpoint().unwrap().unwrap();
    let after = list_segments(&tmp.wal_dir()).unwrap();
    assert!(
        after.first().unwrap() > segments.first().unwrap(),
        "checkpoints release unpinned segments: {segments:?} -> {after:?}"
    );
    drop(recovered);
    let (_, report) = reopen(tmp.path());
    assert_eq!(
        report.replayed_records, 0,
        "the newest checkpoint is current"
    );
}

/// Periodic checkpoints (`checkpoint_every`) fire through the engine's
/// write path and never change answers.
#[test]
fn periodic_checkpoints_are_observationally_silent() {
    let tmp = TempDir::new("periodic");
    let options = DurabilityOptions {
        fsync: FsyncPolicy::Never,
        checkpoint_every: 2,
        ..DurabilityOptions::default()
    };
    let e = boot_durable(tmp.path(), options);
    for step in 0..STEPS {
        apply_step(&e, step);
        e.maybe_checkpoint().unwrap();
    }
    let stats = e.durability_stats().unwrap();
    assert!(
        stats.checkpoints >= 3,
        "boot + every-2-records checkpoints: {stats:?}"
    );
    assert_eq!(stats.wal_records, STEPS as u64);
    drop(e);

    let (recovered, report) = reopen(tmp.path());
    assert!(
        (report.replayed_records as usize) < STEPS,
        "a later checkpoint absorbed part of the log"
    );
    let fresh = reference(STEPS);
    assert_eq!(
        snapshot(&recovered, &ExecOptions::default()),
        snapshot(&fresh, &ExecOptions::default())
    );
    let stats = recovered.durability_stats().unwrap();
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.replayed_records, report.replayed_records);
}

/// WAL replay composes with the hybrid bitset backend: a durable engine
/// forced to dense leaves — checkpointed after a logged compaction that
/// selected packed runs — replays its tail onto the hybrid-compacted
/// base and answers byte-identically to a never-crashed reference, under
/// every registered evaluator and under either leaf policy at reopen.
#[test]
fn replay_onto_hybrid_compacted_checkpoint_is_byte_identical() {
    use minesweeper_join::storage::LeafPolicy;

    let tmp = TempDir::new("hybrid");
    let e = boot_durable(tmp.path(), opts_nosync());
    e.set_leaf_policy(LeafPolicy::Dense);
    // Densify R's first column, fold it with a logged compaction, and
    // checkpoint the compacted (hybrid-selected) base.
    let dense_rows: Vec<(i64, i64)> = (0..=40).map(|v| (v, 5)).collect();
    e.insert("R", int_rows(&dense_rows)).unwrap();
    e.compact_logged(None).unwrap(); // no-op if auto-compact already folded
    let ep = e
        .prepare(CHAIN)
        .unwrap()
        .explain(&ExecOptions::default())
        .unwrap();
    let storage = ep.storage.expect("engine explain fills storage");
    assert!(
        storage.dense_leaves > 0,
        "the checkpoint must capture a hybrid-selected base"
    );
    e.checkpoint().unwrap().unwrap();
    // The script becomes the WAL tail that must replay on top.
    for step in 0..STEPS {
        apply_step(&e, step);
    }
    drop(e);

    let fresh = reference(0);
    fresh.insert("R", int_rows(&dense_rows)).unwrap();
    for step in 0..STEPS {
        apply_step(&fresh, step);
    }

    let (recovered, report) = reopen(tmp.path());
    assert_eq!(report.replayed_records as usize, STEPS, "tail replays");
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    recovered.set_leaf_policy(LeafPolicy::Dense);
    for opts in &all_option_sets() {
        assert_eq!(
            snapshot(&recovered, opts),
            snapshot(&fresh, opts),
            "evaluator {:?} threads={} disagrees after hybrid recovery",
            opts.algo,
            opts.threads
        );
    }
    // After folding the replayed tail, the dense run is re-selected and
    // visible to the planner.
    recovered.compact();
    let ep = recovered
        .prepare(CHAIN)
        .unwrap()
        .explain(&ExecOptions::default())
        .unwrap();
    let storage = ep.storage.expect("engine explain fills storage");
    assert_eq!(storage.leaf, "dense");
    assert!(storage.dense_leaves > 0, "0..=40 run survives recovery");
    drop(recovered);

    // The same directory reopened under the sorted policy agrees too.
    let (sorted_rec, _) = reopen(tmp.path());
    sorted_rec.set_leaf_policy(LeafPolicy::Sorted);
    assert_eq!(
        snapshot(&sorted_rec, &ExecOptions::default()),
        snapshot(&fresh, &ExecOptions::default())
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Model-based crash recovery: random batch interleavings over R and
    /// S, the log killed at a random byte offset, and the recovered
    /// engine must equal a never-crashed reference that applied exactly
    /// the batches whose records survived — serial and sharded.
    #[test]
    fn random_interleavings_with_random_cuts_recover_losslessly(
        batches in prop::collection::vec(
            (prop::bool::ANY, prop::bool::ANY, prop::collection::vec((0i64..8, 0i64..8), 0..4)),
            1..6,
        ),
        cut_frac in 0u32..=1000,
    ) {
        let tmp = TempDir::new("prop");
        let e = boot_durable(tmp.path(), opts_nosync());
        // Empty batches commit without logging a record; the model
        // tracks only the logged ones.
        type Batch = (bool, bool, Vec<(i64, i64)>);
        let mut logged: Vec<&Batch> = Vec::new();
        for b in &batches {
            let (on_r, is_insert, rows) = b;
            let rel = if *on_r { "R" } else { "S" };
            if *is_insert {
                e.insert(rel, int_rows(rows)).unwrap();
            } else {
                e.delete(rel, int_rows(rows)).unwrap();
            }
            if !rows.is_empty() {
                logged.push(b);
            }
        }
        drop(e);

        let full = read_segment_bytes(&tmp.wal_dir(), 1).unwrap();
        prop_assert_eq!(
            full.iter().filter(|&&b| b == b'\n').count(),
            logged.len()
        );
        let cut = (full.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        write_segment_bytes(&tmp.wal_dir(), 1, &full[..cut]).unwrap();

        let (recovered, report) = reopen(tmp.path());
        let survived = full[..cut].iter().filter(|&&b| b == b'\n').count();
        prop_assert_eq!(report.replayed_records as usize, survived);

        let fresh = reference(0);
        for &(on_r, is_insert, ref rows) in logged.into_iter().take(survived) {
            let rel = if on_r { "R" } else { "S" };
            if is_insert {
                fresh.insert(rel, int_rows(rows)).unwrap();
            } else {
                fresh.delete(rel, int_rows(rows)).unwrap();
            }
        }
        for opts in [ExecOptions::default(), ExecOptions::default().with_threads(2)] {
            prop_assert_eq!(
                snapshot(&recovered, &opts),
                snapshot(&fresh, &opts)
            );
        }
    }
}
