//! Cross-backend differential harness: every registered algorithm must
//! produce byte-identical output whether relations are probed through the
//! sorted-array backend, the hybrid bitset backend, or a merge view, and
//! the storage backends themselves must give identical `Gap` answers to
//! identical `find_gap` calls.
//!
//! The harness is reusable: [`DifferentialHarness`] takes one logical
//! database (a list of relations) plus a query, builds the same catalog
//! under [`LeafPolicy::Sorted`] and [`LeafPolicy::Dense`], and offers
//! three checks — stream equality over the whole algorithm registry
//! (serial and with `--threads`), per-call gap equality across
//! (sorted, hybrid, merge-view) on every trie node, and counter sanity.
//! Randomized schemas/data run through proptest; a seeded regression
//! corpus pins the shapes that exercise dense runs, word boundaries, and
//! empty relations deterministically.

use proptest::prelude::*;

use minesweeper_join::baselines::{algorithms, lookup_configured};
use minesweeper_join::core::{naive_join, Query};
use minesweeper_join::storage::{
    builder::RelationBuilder, BitLeafRelation, Database, ExecStats, LeafPolicy, MergeView,
    TrieRelation, TrieStorage, Tuple, Val, NEG_INF, POS_INF,
};
use std::sync::Arc;

/// One relation of the logical database: name, arity, tuples.
struct RelSpec {
    name: &'static str,
    arity: usize,
    tuples: Vec<Tuple>,
}

impl RelSpec {
    fn build(&self) -> TrieRelation {
        let mut b = RelationBuilder::new(self.name, self.arity);
        for t in &self.tuples {
            b.push(t);
        }
        b.build().expect("valid differential relation")
    }
}

/// The same logical database loaded under both leaf policies, plus the
/// query to differentiate on.
struct DifferentialHarness {
    sorted: Database,
    dense: Database,
    rels: Vec<RelSpec>,
    query: Query,
}

impl DifferentialHarness {
    /// Builds both catalogs; `mk_query` receives the attribute count
    /// implied by the caller and the relation handles in `rels` order
    /// (identical across the two catalogs by construction).
    fn new(rels: Vec<RelSpec>, mk_query: impl Fn(&Database) -> Query) -> Self {
        let mut sorted = Database::with_leaf_policy(LeafPolicy::Sorted);
        let mut dense = Database::with_leaf_policy(LeafPolicy::Dense);
        for r in &rels {
            sorted.add(r.build()).expect("unique names");
            dense.add(r.build()).expect("unique names");
        }
        let query = mk_query(&sorted);
        DifferentialHarness {
            sorted,
            dense,
            rels,
            query,
        }
    }

    /// Every supporting registry algorithm — serial, plus the parallel
    /// engine at 2 workers — must emit byte-identical tuple streams over
    /// the two backends, and both must equal the naive oracle.
    fn assert_streams_identical(&self) {
        let oracle = naive_join(&self.sorted, &self.query).unwrap();
        let mut entries = algorithms();
        entries.push(lookup_configured("minesweeper-par", Some(2)).unwrap());
        for algo in entries {
            if !algo.supports(&self.query) {
                continue;
            }
            let on_sorted = algo.run(&self.sorted, &self.query).unwrap();
            let on_dense = algo.run(&self.dense, &self.query).unwrap();
            assert_eq!(
                on_sorted.tuples,
                on_dense.tuples,
                "{}: sorted vs hybrid streams diverge",
                algo.name()
            );
            assert_eq!(
                on_sorted.tuples,
                oracle,
                "{}: diverges from the oracle",
                algo.name()
            );
            assert_eq!(
                on_sorted.stats.bitset_probes,
                0,
                "{}: sorted backend must never touch a bitset",
                algo.name()
            );
            assert_eq!(on_sorted.stats.dense_leaves, 0, "{}", algo.name());
        }
    }

    /// Walks every node of every relation and asserts that the sorted
    /// trie, the forced-dense hybrid, and an empty-delta merge view give
    /// the identical `Gap` to the identical `find_gap` call, for every
    /// stored value, its neighbours, and the infinities.
    fn assert_gaps_identical(&self) {
        for spec in &self.rels {
            let base = Arc::new(spec.build());
            let hybrid = BitLeafRelation::build(base.clone(), LeafPolicy::Dense)
                .expect("Dense policy always builds");
            let empty_ins = RelationBuilder::new(spec.name, spec.arity).build().unwrap();
            let empty_del = RelationBuilder::new(spec.name, spec.arity).build().unwrap();
            let view = MergeView::new(base.as_ref(), &empty_ins, &empty_del);
            let mut stack = vec![(base.root(), view.root())];
            while let Some((node, vnode)) = stack.pop() {
                let vals = base.child_values(node);
                let mut probes: Vec<Val> = vec![NEG_INF, POS_INF, 0];
                for &v in vals {
                    probes.extend([v - 1, v, v + 1]);
                }
                for a in probes {
                    let mut s0 = ExecStats::new();
                    let mut s1 = ExecStats::new();
                    let mut s2 = ExecStats::new();
                    let g0 = base.find_gap(node, a, &mut s0);
                    let g1 = TrieStorage::find_gap(&hybrid, node, a, &mut s1);
                    let g2 = view.find_gap(&vnode, a, &mut s2);
                    assert_eq!(g0, g1, "{}: hybrid gap at {a} node {node:?}", spec.name);
                    assert_eq!(g0, g2, "{}: merge gap at {a} node {node:?}", spec.name);
                    assert_eq!(
                        s0.find_gap_calls, s1.find_gap_calls,
                        "find_gap accounting must match"
                    );
                }
                if node.depth() + 1 < spec.arity {
                    for coord in 1..=base.child_count(node) {
                        let child = base.child(node, coord);
                        let mut st = ExecStats::new();
                        let vchild = view
                            .child_by_value(&vnode, base.value(child), &mut st)
                            .expect("merge view mirrors the base");
                        stack.push((child, vchild));
                    }
                }
            }
        }
    }

    /// Counter sanity on the hybrid side: when the data produced dense
    /// runs, the dense-backed execution must report them (and touch the
    /// bitsets); without dense runs the counters stay zero.
    fn assert_stats_sane(&self) {
        let has_dense = (0..self.rels.len()).any(|i| {
            self.dense
                .probe_target(minesweeper_join::storage::RelId(i))
                .dense_runs()
                > 0
        });
        let ms = algorithms().remove(0);
        let res = ms.run(&self.dense, &self.query).unwrap();
        if has_dense {
            assert!(res.stats.dense_leaves > 0, "dense runs must be reported");
            assert!(res.stats.bitset_probes > 0, "dense runs must answer probes");
        } else {
            assert_eq!(res.stats.dense_leaves, 0);
            assert_eq!(res.stats.bitset_probes, 0);
        }
        assert_eq!(
            res.stats.bitset_probes == 0,
            res.stats.bitset_words_scanned == 0,
            "words are scanned exactly when bitsets are probed"
        );
    }

    /// All three checks.
    fn assert_all(&self) {
        self.assert_streams_identical();
        self.assert_gaps_identical();
        self.assert_stats_sane();
    }
}

/// Bow-tie harness: `R(x) ⋈ S(x, y) ⋈ T(y)`.
fn bowtie(r: Vec<Val>, s: Vec<(Val, Val)>, t: Vec<Val>) -> DifferentialHarness {
    DifferentialHarness::new(
        vec![
            RelSpec {
                name: "R",
                arity: 1,
                tuples: r.into_iter().map(|v| vec![v]).collect(),
            },
            RelSpec {
                name: "S",
                arity: 2,
                tuples: s.into_iter().map(|(a, b)| vec![a, b]).collect(),
            },
            RelSpec {
                name: "T",
                arity: 1,
                tuples: t.into_iter().map(|v| vec![v]).collect(),
            },
        ],
        |db| {
            Query::new(2)
                .atom(db.id_of("R").unwrap(), &[0])
                .atom(db.id_of("S").unwrap(), &[0, 1])
                .atom(db.id_of("T").unwrap(), &[1])
        },
    )
}

/// Triangle harness: `R(x,y) ⋈ S(y,z) ⋈ T(x,z)`.
fn triangle(e: Vec<(Val, Val)>) -> DifferentialHarness {
    let tuples: Vec<Tuple> = e.into_iter().map(|(a, b)| vec![a, b]).collect();
    DifferentialHarness::new(
        ["R", "S", "T"]
            .into_iter()
            .map(|n| RelSpec {
                name: n,
                arity: 2,
                tuples: tuples.clone(),
            })
            .collect(),
        |db| {
            Query::new(3)
                .atom(db.id_of("R").unwrap(), &[0, 1])
                .atom(db.id_of("S").unwrap(), &[1, 2])
                .atom(db.id_of("T").unwrap(), &[0, 2])
        },
    )
}

// ---------------------------------------------------------------------
// Seeded regression corpus: shapes that historically distinguish the
// backends — dense runs spanning u64 word boundaries, all-sparse data,
// empty relations, and a dense second level under a skewed first level.
// ---------------------------------------------------------------------

#[test]
fn regression_dense_first_level() {
    // R and T are contiguous 0..=80: dense root runs crossing the 64-bit
    // word boundary. S is sparse.
    bowtie(
        (0..=80).collect(),
        vec![(0, 5), (63, 9), (64, 9), (80, 2)],
        (0..=80).collect(),
    )
    .assert_all();
}

#[test]
fn regression_dense_second_level() {
    // One heavy x value with a contiguous y-run; other x values sparse.
    let mut s: Vec<(Val, Val)> = (0..70).map(|y| (5, y)).collect();
    s.extend([(1, 3), (9, 1000)]);
    bowtie(vec![1, 5, 9], s, (0..70).collect()).assert_all();
}

#[test]
fn regression_all_sparse() {
    bowtie(
        vec![1, 100, 10_000],
        vec![(1, 100), (100, 10_000), (10_000, 1)],
        vec![100, 10_000],
    )
    .assert_all();
}

#[test]
fn regression_empty_relations() {
    bowtie(vec![], vec![(1, 2)], vec![2]).assert_all();
    bowtie((0..20).collect(), vec![], vec![]).assert_all();
}

#[test]
fn regression_triangle_dense_edges() {
    // A clique on 0..12: every adjacency run is dense.
    let mut e = Vec::new();
    for a in 0..12 {
        for b in 0..12 {
            if a < b {
                e.push((a, b));
            }
        }
    }
    triangle(e).assert_all();
}

#[test]
fn regression_word_boundary_runs() {
    // Runs of exactly 64 and 65 values starting at a word-unaligned base.
    let r: Vec<Val> = (61..61 + 64).collect();
    let t: Vec<Val> = (61..61 + 65).collect();
    let s: Vec<(Val, Val)> = r.iter().map(|&v| (v, v)).collect();
    bowtie(r, s, t).assert_all();
}

// ---------------------------------------------------------------------
// Randomized schemas and data.
// ---------------------------------------------------------------------

fn pairs_strategy(max_len: usize, dom: Val) -> impl Strategy<Value = Vec<(Val, Val)>> {
    prop::collection::vec((0..dom, 0..dom), 0..max_len)
}

fn vals_strategy(max_len: usize, dom: Val) -> impl Strategy<Value = Vec<Val>> {
    prop::collection::vec(0..dom, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random bow-ties over a small domain (dense runs appear naturally):
    /// all backends, all algorithms, all gap answers agree.
    #[test]
    fn random_bowtie_differential(
        r in vals_strategy(40, 24),
        s in pairs_strategy(60, 24),
        t in vals_strategy(40, 24),
    ) {
        bowtie(r, s, t).assert_all();
    }

    /// Random triangles: the cyclic shape exercises the general probe
    /// mode and the dyadic CDS against both backends.
    #[test]
    fn random_triangle_differential(e in pairs_strategy(40, 10)) {
        triangle(e).assert_all();
    }

    /// Random wide-domain bow-ties (mostly sparse): the Auto policy picks
    /// sorted leaves, and Auto ≡ Sorted ≡ Dense on output.
    #[test]
    fn random_auto_policy_matches(
        r in vals_strategy(30, 1000),
        s in pairs_strategy(40, 1000),
    ) {
        let h = bowtie(r, s, (0..16).collect());
        let mut auto_db = Database::with_leaf_policy(LeafPolicy::Auto);
        for spec in &h.rels {
            auto_db.add(spec.build()).unwrap();
        }
        let ms = algorithms().remove(0);
        let a = ms.run(&auto_db, &h.query).unwrap();
        let s0 = ms.run(&h.sorted, &h.query).unwrap();
        let d = ms.run(&h.dense, &h.query).unwrap();
        prop_assert_eq!(&a.tuples, &s0.tuples);
        prop_assert_eq!(&a.tuples, &d.tuples);
    }
}
