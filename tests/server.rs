//! End-to-end tests for the `msj serve` query service: the byte-identity
//! contract (a response body equals the CLI's stdout for the same query
//! and options), admission control under saturation, and
//! disconnect-triggered cancellation. See `docs/SERVICE.md` for the
//! contracts these pin down.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use minesweeper_join::engine::{Engine, ExecOptions};
use minesweeper_join::render;
use minesweeper_join::server::{Client, Reply, ResponseLine, Server, ServerStats};

/// A small two-relation engine with string keys, enough rows for limits
/// and truncation markers to engage.
fn small_engine() -> Engine {
    let mut e = Engine::new();
    e.load_tsv(
        "R",
        "ams 1\nbcn 2\ncdg 3\ndub 4\newr 5\nfra 6\ngva 7\nhel 8\n",
    )
    .unwrap();
    e.load_tsv("S", "1 lis\n2 mad\n3 nce\n4 osl\n5 prg\n6 rix\n")
        .unwrap();
    e
}

/// The serve-side acceptance contract: N concurrent clients over one
/// shared engine each receive bodies byte-identical to the serial CLI's
/// stdout — including `limit k` prefixes under `threads > 1`, where the
/// global-order merge must reproduce the serial stream's exact prefix.
#[test]
fn concurrent_clients_get_serial_cli_bytes() {
    let engine = Arc::new(small_engine());

    // Request lines paired with the *serial* options whose CLI stdout
    // they must reproduce (the renderer is what the CLI prints through).
    let shapes: Vec<(String, ExecOptions)> = vec![
        ("Q R(x, y), S(y, z)".into(), ExecOptions::default()),
        (
            "Q threads=3 R(x, y), S(y, z)".into(),
            ExecOptions::default(),
        ),
        (
            "Q threads=2 limit=2 R(x, y), S(y, z)".into(),
            ExecOptions::default().with_limit(2),
        ),
        (
            "Q limit=3 R(a, b)".into(),
            ExecOptions::default().with_limit(3),
        ),
        (
            "Q algo=leapfrog limit=4 R(x, y), S(y, z)".into(),
            ExecOptions::default().with_algo("leapfrog").with_limit(4),
        ),
    ];
    let expected: Vec<(String, String, u64)> = shapes
        .iter()
        .map(|(req, serial_opts)| {
            let text = req
                .trim_start_matches('Q')
                .trim_start()
                .split(' ')
                .skip_while(|t| t.contains('='))
                .collect::<Vec<_>>()
                .join(" ");
            let stmt = engine.prepare(&text).unwrap();
            let body = render::body_string(&stmt, serial_opts).unwrap();
            let rows = body.lines().filter(|l| !l.starts_with('#')).count() as u64;
            (req.clone(), body, rows)
        })
        .collect();

    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 4).unwrap();
    let addr = server.addr();

    let clients = 8;
    let rounds = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let expected = Arc::new(expected);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for round in 0..rounds {
                    // Stagger shape order per client so different plans
                    // hit the shared cache concurrently.
                    for k in 0..expected.len() {
                        let (req, body, rows) = &expected[(c + round + k) % expected.len()];
                        match client.request(req).unwrap() {
                            Reply::Ok {
                                body: got,
                                rows: got_rows,
                            } => {
                                assert_eq!(&got, body, "body mismatch for {req}");
                                assert_eq!(got_rows, *rows, "row count for {req}");
                            }
                            Reply::Err { code, message } => {
                                panic!("unexpected error for {req}: {code} {message}")
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.connections, clients as u64);
    assert_eq!(stats.requests, (clients * rounds * expected.len()) as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.disconnects, 0);
    server.shutdown().unwrap();
}

/// Admission saturation: with a worker budget of 2, eight concurrent
/// cost-2 (`threads=2`) requests all complete, but never overlap — the
/// peak sum of in-flight worker permits respects the budget.
#[test]
fn admission_bounds_peak_in_flight_under_saturation() {
    let mut engine = Engine::new();
    // Enough rows that concurrent requests genuinely overlap in time.
    let tsv: String = (0..20_000).map(|i| format!("{} {}\n", i, i + 1)).collect();
    engine.load_tsv("E", &tsv).unwrap();
    let engine = Arc::new(engine);

    let budget = 2;
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", budget).unwrap();
    let addr = server.addr();

    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                match client.request("Q threads=2 E(x, y), E(y, z)").unwrap() {
                    Reply::Ok { rows, .. } => rows,
                    Reply::Err { code, message } => panic!("ERR {code} {message}"),
                }
            })
        })
        .collect();
    let rows: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        rows.iter().all(|&r| r == rows[0] && r > 0),
        "all saturated requests complete with the full result: {rows:?}"
    );

    let stats = server.stats();
    assert_eq!(stats.admitted, clients as u64, "everyone got through");
    assert!(
        stats.peak_in_flight <= budget as u64,
        "peak {} exceeded budget {budget}",
        stats.peak_in_flight
    );
    assert!(
        stats.waited >= 1,
        "8 synchronized cost-2 requests on budget 2 must queue"
    );
    server.shutdown().unwrap();
}

/// Disconnect-triggered cancellation: a client that vanishes mid-stream
/// stops its query. The response body is far larger than any socket
/// buffering, so the session is still producing when the client hangs
/// up; the server registers the disconnect, absorbs only the partial
/// work, and the counters stop advancing.
#[test]
fn disconnect_mid_stream_cancels_remaining_work() {
    let mut engine = Engine::new();
    // ~100-byte string keys × 100k rows ⇒ a ~10 MB body, well past what
    // kernel buffers can absorb on loopback.
    let tsv: String = (0..100_000).map(|i| format!("k{i:0>96} {i}\n")).collect();
    engine.load_tsv("B", &tsv).unwrap();
    let engine = Arc::new(engine);

    let full_rows = {
        let stmt = engine.prepare("B(k, v)").unwrap();
        stmt.execute(&ExecOptions::default().with_stats())
            .unwrap()
            .rows
            .len() as u64
    };
    assert_eq!(full_rows, 100_000);

    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 4).unwrap();
    let addr = server.addr();

    {
        let mut client = Client::connect(addr).unwrap();
        // A limited request streams tuples as they are certified (the
        // cancellable path); the limit spans the whole result, so only
        // the disconnect can stop it early.
        client.send("Q threads=2 limit=100000 B(k, v)").unwrap();
        // Read a handful of body lines to prove the stream is live …
        for _ in 0..5 {
            client.read_line().unwrap();
        }
        // … then vanish: dropping the socket with megabytes unread makes
        // the server's next flush fail, which drops the tuple stream and
        // cancels its shard workers.
    }

    // The session notices on its next write; give it a bounded moment.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = server.stats();
        if stats.disconnects == 1 {
            break stats;
        }
        assert!(
            Instant::now() < deadline,
            "server never registered the disconnect: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        stats.rows < full_rows,
        "only a prefix was streamed, got {} of {full_rows}",
        stats.rows
    );
    assert!(
        stats.outputs < full_rows,
        "cancellation stopped the probe loop at {} of {full_rows} outputs",
        stats.outputs
    );

    // "Stops advancing": the counters are final once the disconnect is
    // registered — no background worker keeps producing.
    std::thread::sleep(Duration::from_millis(100));
    let later = server.stats();
    assert_eq!(later.outputs, stats.outputs);
    assert_eq!(later.find_gap_calls, stats.find_gap_calls);
    server.shutdown().unwrap();
}

/// Protocol-level behaviour over a live socket: PING/STATS/QUIT, stable
/// error codes, and blank-line tolerance.
#[test]
fn protocol_errors_and_stats_over_the_wire() {
    let server = Server::start(Arc::new(small_engine()), "127.0.0.1:0", 3).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(
        client.request("PING").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );
    match client.request("Q R(x").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "PARSE"),
        other => panic!("expected PARSE, got {other:?}"),
    }
    match client.request("Q algo=quantum R(x, y)").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "ALGO"),
        other => panic!("expected ALGO, got {other:?}"),
    }
    match client.request("Q Nope(x, y)").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "PARSE"),
        other => panic!("expected PARSE for unknown relation, got {other:?}"),
    }
    match client.request("HELLO").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "PROTO"),
        other => panic!("expected PROTO, got {other:?}"),
    }
    match client.request("Q threads=many R(x, y)").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "PROTO"),
        other => panic!("expected PROTO, got {other:?}"),
    }

    let reply = client.request("STATS").unwrap();
    let body = reply.body().expect("STATS succeeds");
    let stats = ServerStats::parse_body(body).expect("STATS body parses");
    assert_eq!(stats.budget, 3);
    assert_eq!(stats.errors, 5);
    assert_eq!(stats.active, 1);

    assert_eq!(
        client.request("QUIT").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );
    server.shutdown().unwrap();
}

/// The write verbs over a live socket: `W INSERT` / `W DELETE` change
/// what later prepares see (with set-semantics `OK` counts), `W
/// COMPACT` is observationally silent, error codes are stable, and
/// `STATS` tracks the write counters and the data-version clock.
#[test]
fn write_verbs_mutate_compact_and_count_over_the_wire() {
    let engine = Arc::new(small_engine());
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let join_rows = |client: &mut Client| match client.request("Q R(x, y), S(y, z)").unwrap() {
        Reply::Ok { rows, body } => (rows, body),
        other => panic!("query failed: {other:?}"),
    };
    let (rows_before, _) = join_rows(&mut client);

    // A new R row joining S's `9 zrh` partner row (inserted first).
    assert_eq!(
        client.request("W INSERT S 9 zrh").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 1
        }
    );
    assert_eq!(
        client.request("W INSERT R ibz 9").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 1
        }
    );
    // Duplicate insert: set semantics, nothing changes.
    assert_eq!(
        client.request("W INSERT R ibz 9").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );
    // Delete one pre-loaded row; deleting it again is a no-op.
    assert_eq!(
        client.request("W DELETE R ams 1").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 1
        }
    );
    assert_eq!(
        client.request("W DELETE R ams 1").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );

    let (rows_after, body_after) = join_rows(&mut client);
    assert_eq!(rows_after, rows_before, "one row gained, one lost");
    assert!(body_after.contains("ibz"), "the insert is visible");
    assert!(!body_after.contains("ams"), "the delete is visible");

    // Stable error codes: unknown relation (STORAGE), bad arity and a
    // non-integer cell in an Int column (LOAD), malformed line (PROTO).
    for (req, want) in [
        ("W INSERT Nope 1 2", "STORAGE"),
        ("W INSERT R onlyone", "LOAD"),
        ("W INSERT S notanint x", "LOAD"),
        ("W UPSERT R 1 2", "PROTO"),
    ] {
        match client.request(req).unwrap() {
            Reply::Err { code, .. } => assert_eq!(code, want, "{req}"),
            other => panic!("expected {want} for {req}, got {other:?}"),
        }
    }

    // Compaction folds the pending deltas of R and S, changes nothing a
    // query can see, and a second compaction finds nothing to fold.
    assert_eq!(
        client.request("W COMPACT").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 2
        }
    );
    assert_eq!(join_rows(&mut client).1, body_after);
    assert_eq!(
        client.request("W COMPACT R").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );

    let reply = client.request("STATS").unwrap();
    let stats = ServerStats::parse_body(reply.body().unwrap()).expect("STATS body parses");
    assert_eq!(stats.writes, 5, "5 row writes reached the engine");
    assert_eq!(stats.rows_inserted, 2);
    assert_eq!(stats.rows_deleted, 1);
    assert_eq!(stats.compactions, 2);
    // The data-version clock is the sum of per-relation version
    // counters: R moved twice (insert + delete; the no-op repeats and
    // the compaction don't count), S moved once.
    assert_eq!(
        stats.data_version,
        engine.relation_version("R").unwrap() + engine.relation_version("S").unwrap()
    );
    assert!(stats.data_version >= 3);
    assert_eq!(stats.errors, 4);

    server.shutdown().unwrap();
}

/// `W CHECKPOINT` over the wire: a stable `STORAGE` error on an
/// in-memory server, a published checkpoint (with the durability STATS
/// counters moving) on a durable one — and the directory recovers.
#[test]
fn checkpoint_verb_and_durability_stats_over_the_wire() {
    use minesweeper_join::durability::DurabilityOptions;
    use minesweeper_join::engine::DurableBoot;

    // In-memory: the verb parses but the engine has nowhere to write.
    let server = Server::start(Arc::new(small_engine()), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.request("W CHECKPOINT").unwrap() {
        Reply::Err { code, message } => {
            assert_eq!(code, "STORAGE");
            assert!(message.contains("data directory"), "{message}");
        }
        other => panic!("expected STORAGE, got {other:?}"),
    }
    match client.request("W CHECKPOINT now").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "PROTO"),
        other => panic!("expected PROTO, got {other:?}"),
    }
    let stats = ServerStats::parse_body(client.request("STATS").unwrap().body().unwrap()).unwrap();
    assert_eq!(
        (stats.wal_records, stats.checkpoints, stats.recoveries),
        (0, 0, 0),
        "an in-memory server reports zero durability activity"
    );
    server.shutdown().unwrap();

    // Durable: boot a data directory, write over the wire, checkpoint.
    let dir = std::env::temp_dir().join(format!("msj-ckpt-verb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut e, boot) = Engine::open_durable(&dir, DurabilityOptions::default()).unwrap();
    assert!(matches!(boot, DurableBoot::Fresh));
    e.load_tsv("R", "ams 1\nbcn 2\n").unwrap();
    e.load_tsv("S", "1 lis\n2 mad\n").unwrap();
    e.checkpoint().unwrap().unwrap();
    let engine = Arc::new(e);
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    for req in ["W INSERT S 9 zrh", "W INSERT R ibz 9"] {
        assert!(matches!(
            client.request(req).unwrap(),
            Reply::Ok { rows: 1, .. }
        ));
    }
    assert_eq!(
        client.request("W CHECKPOINT").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 2
        },
        "OK counts the relations dumped"
    );
    let stats = ServerStats::parse_body(client.request("STATS").unwrap().body().unwrap()).unwrap();
    assert_eq!(stats.wal_records, 2, "one record per committed batch");
    assert!(stats.wal_bytes > 0);
    assert_eq!(stats.checkpoints, 2, "boot checkpoint + the verb");
    assert_eq!((stats.recoveries, stats.replayed_records), (0, 0));

    server.shutdown().unwrap();
    drop(client);
    drop(engine);

    // The directory reopens: the verb's checkpoint is current, so
    // nothing replays, and the wire writes are all present.
    let (e, boot) = Engine::open_durable(&dir, DurabilityOptions::default()).unwrap();
    match boot {
        DurableBoot::Recovered(report) => {
            assert_eq!(
                report.replayed_records, 0,
                "the checkpoint absorbed the log"
            );
        }
        DurableBoot::Fresh => panic!("the directory holds data"),
    }
    assert_eq!(e.durability_stats().unwrap().recoveries, 1);
    let body = render::body_string(
        &e.prepare("R(x, y), S(y, z)").unwrap(),
        &ExecOptions::default(),
    )
    .unwrap();
    assert!(body.contains("ibz") && body.contains("zrh"));
    drop(e);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deadline-triggered cancellation: a `timeout=`-expired streaming
/// request is cancelled *server-side* while the client keeps its
/// connection — partial rows stay flushed, the response terminates with
/// a stable `ERR DEADLINE`, the work counters freeze below one full
/// execution, and the session remains usable.
#[test]
fn deadline_mid_stream_cancels_server_side() {
    let mut engine = Engine::new();
    // Same ~10 MB body as the disconnect test: far past what kernel
    // buffers absorb, so TCP backpressure paces the server against the
    // deliberately slow reader below.
    let tsv: String = (0..100_000).map(|i| format!("k{i:0>96} {i}\n")).collect();
    engine.load_tsv("B", &tsv).unwrap();
    let engine = Arc::new(engine);
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 4).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // The client reads, but slower than the server produces: when the
    // deadline hits, the stream is mid-body — only a server-side check
    // inside the streaming loop can stop it (the client never hangs up).
    client
        .send("Q threads=2 limit=100000 timeout=200 B(k, v)")
        .unwrap();
    let mut body_lines: u64 = 0;
    let (code, message) = loop {
        match client.read_line().unwrap() {
            ResponseLine::Body(_) => {
                body_lines += 1;
                if body_lines.is_multiple_of(64) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            ResponseLine::Err(code, message) => break (code, message),
            ResponseLine::Ok(rows) => {
                panic!("stream completed ({rows} rows) before the deadline")
            }
        }
    };
    assert_eq!(code, "DEADLINE");
    assert!(message.contains("deadline exceeded after"), "{message}");
    assert!(
        body_lines < 100_000,
        "only a prefix was flushed, got {body_lines} lines"
    );

    let stats = server.stats();
    assert_eq!(stats.deadlines, 1);
    assert_eq!(stats.disconnects, 0, "the client never hung up");
    assert_eq!(stats.errors, 0, "a deadline is not an error");
    assert!(stats.rows < 100_000);
    assert!(
        stats.outputs < 100_000,
        "cancellation stopped the probe loop at {} outputs",
        stats.outputs
    );

    // Frozen means frozen: no background worker keeps producing after
    // the ERR line is on the wire.
    std::thread::sleep(Duration::from_millis(100));
    let later = server.stats();
    assert_eq!(later.outputs, stats.outputs);
    assert_eq!(later.find_gap_calls, stats.find_gap_calls);

    // `timeout=0` expires before any work — the deterministic corner:
    // a materializing (unlimited serial) request answers ERR DEADLINE
    // with no body at all.
    match client.request("Q timeout=0 B(k, v)").unwrap() {
        Reply::Err { code, .. } => assert_eq!(code, "DEADLINE"),
        other => panic!("expected DEADLINE, got {other:?}"),
    }

    // The connection survived both expiries.
    assert_eq!(
        client.request("PING").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );
    assert_eq!(server.stats().deadlines, 2);
    server.shutdown().unwrap();
}

/// The prepared-statement contract: `EXEC` output is byte-identical to
/// the equivalent one-shot `Q` while `query_parses` stays flat (the
/// deterministic evidence that EXEC skips parsing and planning); a
/// write re-plans transparently; `UNPREPARE` ends the name's life.
#[test]
fn prepare_exec_skips_parsing_and_matches_one_shot_bytes() {
    let engine = Arc::new(small_engine());
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 2).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let one_shot = match client.request("Q R(x, y), S(y, z)").unwrap() {
        Reply::Ok { body, rows } => (body, rows),
        other => panic!("one-shot failed: {other:?}"),
    };
    assert_eq!(
        client.request("PREPARE hot -- R(x, y), S(y, z)").unwrap(),
        Reply::Ok {
            body: String::new(),
            rows: 0
        }
    );

    // Parse count is flat across EXECs on a read-only connection.
    let parses_before = server.stats().query_parses;
    for _ in 0..3 {
        match client.request("EXEC hot").unwrap() {
            Reply::Ok { body, rows } => {
                assert_eq!(body, one_shot.0, "EXEC must reproduce the Q bytes");
                assert_eq!(rows, one_shot.1);
            }
            other => panic!("EXEC failed: {other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(
        stats.query_parses, parses_before,
        "three EXECs parsed nothing"
    );
    assert_eq!(stats.exec_hits, 3);
    assert_eq!(stats.prepared, 1);

    // A per-execution override mirrors the equivalent one-shot option.
    let limited = match client.request("Q limit=2 R(x, y), S(y, z)").unwrap() {
        Reply::Ok { body, .. } => body,
        other => panic!("limited Q failed: {other:?}"),
    };
    match client.request("EXEC hot limit=2").unwrap() {
        Reply::Ok { body, .. } => assert_eq!(body, limited),
        other => panic!("EXEC limit=2 failed: {other:?}"),
    }

    // A write bumps the data version: the next EXEC re-plans from the
    // stored text (exactly one parse), then goes flat again — and its
    // bytes keep matching a fresh one-shot Q.
    assert!(matches!(
        client.request("W INSERT S 1 zzz").unwrap(),
        Reply::Ok { rows: 1, .. }
    ));
    let parses_stale = server.stats().query_parses;
    let fresh = match client.request("EXEC hot").unwrap() {
        Reply::Ok { body, .. } => body,
        other => panic!("EXEC after write failed: {other:?}"),
    };
    assert!(fresh.contains("zzz"), "the write is visible to EXEC");
    assert_eq!(
        server.stats().query_parses,
        parses_stale + 1,
        "staleness costs exactly one re-parse"
    );
    match client.request("EXEC hot").unwrap() {
        Reply::Ok { body, .. } => assert_eq!(body, fresh),
        other => panic!("EXEC failed: {other:?}"),
    }
    assert_eq!(server.stats().query_parses, parses_stale + 1, "flat again");
    let q_fresh = match client.request("Q R(x, y), S(y, z)").unwrap() {
        Reply::Ok { body, .. } => body,
        other => panic!("fresh Q failed: {other:?}"),
    };
    assert_eq!(q_fresh, fresh, "EXEC and Q agree after the re-plan");

    // Lifecycle: UNPREPARE reports what it dropped; EXEC on a dropped
    // name is a protocol error.
    assert!(matches!(
        client.request("UNPREPARE hot").unwrap(),
        Reply::Ok { rows: 1, .. }
    ));
    match client.request("EXEC hot").unwrap() {
        Reply::Err { code, message } => {
            assert_eq!(code, "PROTO");
            assert!(message.contains("no prepared statement"), "{message}");
        }
        other => panic!("expected PROTO, got {other:?}"),
    }
    assert!(matches!(
        client.request("UNPREPARE hot").unwrap(),
        Reply::Ok { rows: 0, .. }
    ));
    server.shutdown().unwrap();
}

/// The batching contract: a deliberately slow reader taking tiny paced
/// reads off the raw socket still reassembles the exact renderer bytes,
/// and the per-body flush count follows the documented watermark
/// arithmetic instead of one flush per line.
#[test]
fn slow_reader_receives_exact_bytes_under_batching() {
    let mut engine = Engine::new();
    let tsv: String = (0..2_000).map(|i| format!("{i} {}\n", i + 1)).collect();
    engine.load_tsv("E", &tsv).unwrap();
    let engine = Arc::new(engine);
    let expected =
        render::body_string(&engine.prepare("E(x, y)").unwrap(), &ExecOptions::default()).unwrap();

    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", 2).unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"Q E(x, y)\n").unwrap();

    // Tiny odd-sized reads with pauses: chunk boundaries land anywhere
    // relative to lines and flush batches.
    let mut raw = Vec::new();
    let mut chunk = [0u8; 257];
    loop {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server hung up mid-response");
        raw.extend_from_slice(&chunk[..n]);
        if raw.ends_with(b"\n") {
            let last = raw[..raw.len() - 1].split(|&b| b == b'\n').next_back();
            if last.is_some_and(|l| l.starts_with(b"OK ") || l.starts_with(b"ERR ")) {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let text = String::from_utf8(raw).unwrap();
    let mut body = String::new();
    let mut terminator = String::new();
    for line in text.lines() {
        match line.strip_prefix('|') {
            Some(rest) => {
                body.push_str(rest);
                body.push('\n');
            }
            None => terminator = line.to_string(),
        }
    }
    assert_eq!(body, expected, "batched stream reassembles exactly");
    assert_eq!(terminator, "OK 2000");

    // Flush accounting (default watermarks, byte watermark never trips
    // on these short rows): first line, then every 128th.
    let lines = expected.lines().count() as u64;
    assert_eq!(server.stats().flushes, 1 + (lines - 1) / 128);
    server.shutdown().unwrap();
}

// ------------------------------------------------------------ processes

/// Drives the real binaries: `msj serve` + `msj client` against the
/// one-shot `msj` for the same queries must produce identical stdout,
/// and the process exit codes follow the documented policy (2 usage,
/// 3 rejected query, 1 execution failure).
#[test]
fn serve_and_client_binaries_match_one_shot_stdout() {
    let bin = env!("CARGO_BIN_EXE_msj");
    let dir = std::env::temp_dir().join(format!("msj-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let r = dir.join("R.tsv");
    let s = dir.join("S.tsv");
    std::fs::write(&r, "1 5\n2 7\n4 9\n").unwrap();
    std::fs::write(&s, "5 1\n7 2\n9 4\n").unwrap();
    let rel_r = format!("R={}", r.display());
    let rel_s = format!("S={}", s.display());

    // Kill-on-drop guard: without it, a panic between spawn and the
    // explicit kill below leaks a serve process past the test run.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    let mut serve = KillOnDrop(
        std::process::Command::new(bin)
            .args([
                "serve",
                "--rel",
                &rel_r,
                "--rel",
                &rel_s,
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap(),
    );
    let serve = &mut serve.0;
    let mut first_line = String::new();
    BufReader::new(serve.stdout.as_mut().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first_line:?}"))
        .to_string();

    // (request line, one-shot CLI flags) pairs that must print the same
    // bytes — the serve path through `msj client`, and directly.
    // The explain case goes first: its body includes cache provenance,
    // which matches the fresh one-shot process only while the server's
    // cache is also cold.
    let cases: &[(&str, &[&str])] = &[
        ("Q explain=json R(x, y), S(y, z)", &["--explain-json"]),
        ("Q R(x, y), S(y, z)", &[]),
        ("Q threads=2 R(x, y), S(y, z)", &["--threads", "2"]),
        (
            "Q threads=2 limit=2 R(x, y), S(y, z)",
            &["--threads", "2", "--limit", "2"],
        ),
        (
            "Q algo=naive limit=1 R(x, y), S(y, z)",
            &["--algo", "naive", "--limit", "1"],
        ),
    ];

    let mut requests = String::new();
    let mut one_shot = Vec::new();
    for (req, flags) in cases {
        requests.push_str(req);
        requests.push('\n');
        let out = std::process::Command::new(bin)
            .args(["--rel", &rel_r, "--rel", &rel_s, "R(x, y), S(y, z)"])
            .args(*flags)
            .output()
            .unwrap();
        assert!(out.status.success(), "one-shot failed for {flags:?}");
        one_shot.extend_from_slice(&out.stdout);
    }

    let mut client = std::process::Command::new(bin)
        .args(["client", "--addr", &addr])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    client
        .stdin
        .take()
        .unwrap()
        .write_all(requests.as_bytes())
        .unwrap();
    let mut client_out = Vec::new();
    client
        .stdout
        .take()
        .unwrap()
        .read_to_end(&mut client_out)
        .unwrap();
    assert!(client.wait().unwrap().success());
    assert_eq!(
        String::from_utf8_lossy(&client_out),
        String::from_utf8_lossy(&one_shot),
        "serve/client bytes must match the one-shot CLI"
    );

    // Exit-code policy, client side: a rejected query exits 3.
    let mut bad = std::process::Command::new(bin)
        .args(["client", "--addr", &addr])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    bad.stdin.take().unwrap().write_all(b"Q R(x\n").unwrap();
    assert_eq!(bad.wait().unwrap().code(), Some(3));

    serve.kill().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exit-code policy, one-shot side: usage errors exit 2, rejected
/// queries 3, execution/I-O failures 1.
#[test]
fn one_shot_exit_codes_distinguish_rejection_from_failure() {
    let bin = env!("CARGO_BIN_EXE_msj");
    let dir = std::env::temp_dir().join(format!("msj-exit-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let r = dir.join("R.tsv");
    std::fs::write(&r, "1 2\n").unwrap();
    let rel = format!("R={}", r.display());

    let run = |args: &[&str]| {
        std::process::Command::new(bin)
            .args(args)
            .output()
            .unwrap()
            .status
            .code()
    };
    assert_eq!(run(&[]), Some(2), "usage");
    assert_eq!(run(&["--rel", &rel, "R(x"]), Some(3), "parse rejection");
    assert_eq!(
        run(&["--rel", &rel, "--algo", "quantum", "R(x, y)"]),
        Some(3),
        "unknown algorithm rejection"
    );
    assert_eq!(
        run(&["--rel", "R=/nonexistent/path.tsv", "R(x, y)"]),
        Some(1),
        "I/O failure"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The durability acceptance criterion at process level: `msj serve
/// --data-dir`, writes over the wire, `kill -9`, restart from the same
/// directory — the same query returns byte-identical output. Then a
/// SIGTERM drains gracefully (exit 0, final checkpoint) and a third
/// boot still agrees.
#[cfg(unix)]
#[test]
fn kill_dash_nine_then_restart_recovers_identical_answers() {
    let bin = env!("CARGO_BIN_EXE_msj");
    let dir = std::env::temp_dir().join(format!("msj-kill9-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let r = dir.join("R.tsv");
    let s = dir.join("S.tsv");
    std::fs::write(&r, "1 5\n2 7\n4 9\n").unwrap();
    std::fs::write(&s, "5 1\n7 2\n9 4\n").unwrap();
    let data = dir.join("data");
    let data_arg = data.display().to_string();
    let rel_r = format!("R={}", r.display());
    let rel_s = format!("S={}", s.display());

    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }

    let spawn_serve = |extra: &[&str]| -> (KillOnDrop, String) {
        let mut child = std::process::Command::new(bin)
            .args(["serve", "--data-dir", &data_arg, "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        let mut first_line = String::new();
        BufReader::new(child.stdout.as_mut().unwrap())
            .read_line(&mut first_line)
            .unwrap();
        let addr = first_line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {first_line:?}"))
            .to_string();
        (KillOnDrop(child), addr)
    };

    let run_client = |addr: &str, requests: &str| -> Vec<u8> {
        let mut client = std::process::Command::new(bin)
            .args(["client", "--addr", addr])
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        client
            .stdin
            .take()
            .unwrap()
            .write_all(requests.as_bytes())
            .unwrap();
        let mut out = Vec::new();
        client.stdout.take().unwrap().read_to_end(&mut out).unwrap();
        assert!(
            client.wait().unwrap().success(),
            "client failed: {requests:?}"
        );
        out
    };
    const QUERY: &str = "Q R(x, y), S(y, z)\n";

    // Boot 1: fresh directory, load --rel files, take writes (the
    // default --fsync always makes every acked write kill -9 proof),
    // then die without any warning.
    let (mut serve1, addr1) = spawn_serve(&["--rel", &rel_r, "--rel", &rel_s]);
    run_client(
        &addr1,
        "W INSERT R 8 5\nW INSERT S 9 8\nW INSERT R 3 9\nW DELETE R 4 9\n",
    );
    let before = run_client(&addr1, QUERY);
    serve1.0.kill().unwrap(); // SIGKILL — no drain, no checkpoint
    serve1.0.wait().unwrap();

    // Boot 2: recovery replays the wire writes from the WAL tail.
    let (mut serve2, addr2) = spawn_serve(&[]);
    let after = run_client(&addr2, QUERY);
    assert_eq!(
        String::from_utf8_lossy(&after),
        String::from_utf8_lossy(&before),
        "kill -9 then restart must not change any answer"
    );

    // SIGTERM: the server drains, writes a final checkpoint, exits 0.
    run_client(&addr2, "W INSERT R 10 5\n");
    let expected_after_drain = run_client(&addr2, QUERY);
    let pid = serve2.0.id();
    let status = std::process::Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -TERM failed");
    let deadline = Instant::now() + Duration::from_secs(10);
    let code = loop {
        if let Some(status) = serve2.0.try_wait().unwrap() {
            break status.code();
        }
        assert!(Instant::now() < deadline, "serve did not drain in 10s");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(code, Some(0), "a drained shutdown exits 0");

    // Boot 3: the drain checkpoint is current and the answers agree.
    let (_serve3, addr3) = spawn_serve(&[]);
    let third = run_client(&addr3, QUERY);
    assert_eq!(
        String::from_utf8_lossy(&third),
        String::from_utf8_lossy(&expected_after_drain)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
