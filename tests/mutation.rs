//! Write-path integration tests: the data-lifecycle contract of
//! `docs/STORAGE.md`, end to end through the engine.
//!
//! The three pillars:
//!
//! 1. **Write equivalence** — after any sequence of `insert` / `delete`
//!    batches, every registered evaluator (serial, sharded, and all
//!    baselines) returns results byte-identical to a fresh engine loaded
//!    with the final logical content.
//! 2. **Snapshot isolation** — a statement (or a running stream, lazy or
//!    sharded) prepared before a write never observes it; a statement
//!    prepared after does.
//! 3. **Version-keyed cache invalidation** — a write to a relation a
//!    cached shape touches forces a re-plan; writes elsewhere, no-op
//!    writes, and compaction all leave the cache warm.

use minesweeper_join::baselines::algorithm_names;
use minesweeper_join::engine::{Engine, ExecOptions, StatementResult};
use minesweeper_join::storage::Value;

use proptest::prelude::*;

/// R(a,b), S(b,c) over small integer data: every registered evaluator
/// supports this shape.
const CHAIN: &str = "R(a, b), S(b, c)";

fn int_rows(pairs: &[(i64, i64)]) -> Vec<Vec<Value>> {
    pairs
        .iter()
        .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
        .collect()
}

/// An engine with mutable R and S plus an unrelated relation U.
fn mutable_engine() -> Engine {
    let mut e = Engine::new();
    e.load_tsv("R", "1 5\n2 7\n4 9\n8 9\n").unwrap();
    e.load_tsv("S", "5 10\n7 11\n9 12\n").unwrap();
    e.load_tsv("U", "1\n2\n").unwrap();
    e
}

/// A fresh engine whose R and S hold exactly the given final content.
fn fresh_engine(r: &[(i64, i64)], s: &[(i64, i64)]) -> Engine {
    let mut e = Engine::new();
    let tsv = |rows: &[(i64, i64)]| {
        rows.iter()
            .map(|(a, b)| format!("{a} {b}\n"))
            .collect::<String>()
    };
    // load_tsv rejects empty relations; seed with a row that joins
    // nothing instead when a set drains completely.
    let nonempty = |rows: &[(i64, i64)]| {
        if rows.is_empty() {
            "999999 999998\n".to_string()
        } else {
            tsv(rows)
        }
    };
    e.load_tsv("R", &nonempty(r)).unwrap();
    e.load_tsv("S", &nonempty(s)).unwrap();
    e.load_tsv("U", "1\n2\n").unwrap();
    e
}

fn run(e: &Engine, query: &str, opts: &ExecOptions) -> StatementResult {
    e.prepare(query).unwrap().execute(opts).unwrap()
}

/// Every evaluator × {serial, threads=2} sees the same rows from a
/// written-to engine as from a fresh load of the final content.
#[test]
fn writes_equal_fresh_load_for_every_algorithm() {
    let e = mutable_engine();
    // Mixed batches: new rows, a delete, a delete-then-reinsert.
    e.insert("R", int_rows(&[(3, 7), (6, 5)])).unwrap();
    e.delete("R", int_rows(&[(4, 9), (8, 9)])).unwrap();
    e.insert("R", int_rows(&[(8, 9)])).unwrap();
    e.delete("S", int_rows(&[(9, 12)])).unwrap();
    e.insert("S", int_rows(&[(9, 13), (5, 2)])).unwrap();

    let fresh = fresh_engine(
        &[(1, 5), (2, 7), (3, 7), (6, 5), (8, 9)],
        &[(5, 10), (5, 2), (7, 11), (9, 13)],
    );

    let mut option_sets = vec![
        ExecOptions::default(),
        ExecOptions::default().with_threads(1),
        ExecOptions::default().with_threads(2),
    ];
    for name in algorithm_names() {
        option_sets.push(ExecOptions::default().with_algo(name));
    }
    for opts in &option_sets {
        let got = run(&e, CHAIN, opts);
        let expect = run(&fresh, CHAIN, opts);
        assert_eq!(got.columns, expect.columns);
        assert_eq!(
            got.rows, expect.rows,
            "evaluator {:?} threads={} disagrees with a fresh load",
            opts.algo, opts.threads
        );
        assert!(!got.rows.is_empty(), "the test data joins");
    }
}

/// String writes intern through the dictionary and decode like loaded
/// rows; deleting a never-interned string is a clean no-op.
#[test]
fn string_writes_round_trip() {
    let mut e = Engine::new();
    e.load_tsv("F", "jfk sfo\nsfo lax\n").unwrap();
    let out = e
        .insert(
            "F",
            [vec![
                Value::Str("lax".to_string()),
                Value::Str("jfk".to_string()),
            ]],
        )
        .unwrap();
    assert_eq!(out.inserted, 1);
    // A vacuous delete: the string was never interned, nothing matches.
    let out = e
        .delete(
            "F",
            [vec![
                Value::Str("nowhere".to_string()),
                Value::Str("jfk".to_string()),
            ]],
        )
        .unwrap();
    assert_eq!(out.affected(), 0);

    let res = run(&e, "F(a, b), F(b, c)", &ExecOptions::default());
    // jfk→sfo→lax closes into a 3-cycle once the insert lands, so every
    // airport starts a 2-hop path: three rows instead of the loaded one.
    assert_eq!(res.rows.len(), 3);
    assert!(res
        .rows
        .iter()
        .any(|r| r[0] == Value::Str("lax".to_string())));
}

/// Statements and streams capture the engine's snapshot at prepare time;
/// later writes are invisible to them (lazy serial and sharded paths).
#[test]
fn in_flight_streams_never_observe_later_writes() {
    for threads in [0usize, 2] {
        let e = mutable_engine();
        let opts = if threads == 0 {
            ExecOptions::default()
        } else {
            ExecOptions::default().with_threads(threads)
        };
        let before = run(&e, CHAIN, &opts);

        let stmt = e.prepare(CHAIN).unwrap();
        let mut stream = stmt.stream(&opts).unwrap();
        let first = stream.next().expect("the test data joins");

        // Writes land while the stream is mid-flight.
        e.insert("R", int_rows(&[(0, 5), (0, 7), (0, 9)])).unwrap();
        e.delete("S", int_rows(&[(5, 10), (7, 11), (9, 12)]))
            .unwrap();

        // Streams yield in GAO order, `execute` sorts in attribute
        // order — compare as sets of rows.
        let mut rows = vec![first];
        rows.extend(&mut stream);
        rows.sort();
        let mut expect = before.rows.clone();
        expect.sort();
        assert_eq!(
            rows, expect,
            "threads={threads}: in-flight stream must equal execution against its snapshot"
        );
        // The already-prepared statement is pinned to its snapshot too.
        assert_eq!(stmt.execute(&opts).unwrap().rows, before.rows);

        // A fresh prepare observes the writes.
        let after = run(&e, CHAIN, &opts);
        assert_ne!(after.rows, before.rows);
    }
}

/// The plan cache is keyed by (shape, versions of the touched
/// relations): a write to a touched relation forces a re-plan, anything
/// else keeps the entry warm.
#[test]
fn cache_invalidation_follows_relation_versions() {
    let e = mutable_engine();
    assert!(!e.prepare(CHAIN).unwrap().cache_hit(), "cold cache");
    assert!(e.prepare(CHAIN).unwrap().cache_hit(), "warm repeat");

    // Write to a relation the shape touches: stale, then warm again.
    e.insert("R", int_rows(&[(50, 5)])).unwrap();
    assert!(
        !e.prepare(CHAIN).unwrap().cache_hit(),
        "version bump on R invalidates the entry"
    );
    assert!(e.prepare(CHAIN).unwrap().cache_hit(), "rebuilt and warm");

    // Write to an untouched relation: the entry stays warm.
    e.insert("U", [vec![Value::Int(3)]]).unwrap();
    assert!(
        e.prepare(CHAIN).unwrap().cache_hit(),
        "a write to U must not invalidate an R,S shape"
    );

    // A no-op write (row already present) does not bump the version.
    let v = e.relation_version("R").unwrap();
    let out = e.insert("R", int_rows(&[(50, 5)])).unwrap();
    assert_eq!(out.affected(), 0);
    assert_eq!(e.relation_version("R").unwrap(), v);
    assert!(e.prepare(CHAIN).unwrap().cache_hit(), "no-op keeps it warm");

    // Compaction is content-neutral: no version change, cache warm.
    assert!(e.compact() >= 1, "R has a pending delta to fold");
    assert_eq!(e.relation_version("R").unwrap(), v);
    assert!(
        e.prepare(CHAIN).unwrap().cache_hit(),
        "compaction must not invalidate"
    );
}

/// Version counters move exactly with logical content changes.
#[test]
fn version_counters_track_content() {
    let e = mutable_engine();
    assert_eq!(e.relation_version("R").unwrap(), 0);
    e.insert("R", int_rows(&[(10, 10)])).unwrap();
    assert_eq!(e.relation_version("R").unwrap(), 1);
    // Insert-then-delete of the same new row changes content twice.
    e.delete("R", int_rows(&[(10, 10)])).unwrap();
    assert_eq!(e.relation_version("R").unwrap(), 2);
    assert_eq!(e.relation_version("S").unwrap(), 0, "S untouched");
}

/// Auto-compaction fires after a write exactly when the delta outgrows
/// `COMPACT_DELTA_RATIO` of the base — below the threshold the delta is
/// left pending, above it the fold happens inside the write.
#[test]
fn auto_compaction_triggers_at_the_delta_threshold() {
    let e = mutable_engine();
    assert!(e.auto_compact_enabled(), "on by default");
    assert_eq!(e.auto_compactions(), 0);

    // R's base has 4 rows; the ratio is 0.25, so one delta row is at
    // the threshold but not over it.
    e.insert("R", int_rows(&[(20, 5)])).unwrap();
    assert_eq!(e.auto_compactions(), 0, "delta of 1 on a base of 4 waits");

    // Two more rows push the delta to 3 > 0.25 * 4: the write compacts.
    e.insert("R", int_rows(&[(21, 5), (22, 5)])).unwrap();
    assert_eq!(e.auto_compactions(), 1);
    assert_eq!(e.compact(), 0, "nothing left pending after the auto-fold");
}

/// Opting out (`set_auto_compact(false)`) restores the advisory
/// behavior: deltas accumulate until an explicit `compact()` — and
/// either way the answers, versions, and cache behavior are identical.
#[test]
fn auto_compaction_opt_out_and_observational_silence() {
    let auto = mutable_engine();
    let manual = mutable_engine();
    manual.set_auto_compact(false);

    for e in [&auto, &manual] {
        e.insert("R", int_rows(&[(20, 5), (21, 5), (22, 5)]))
            .unwrap();
        e.delete("S", int_rows(&[(9, 12)])).unwrap();
        e.insert("S", int_rows(&[(9, 13)])).unwrap();
    }
    assert!(auto.auto_compactions() >= 1, "threshold crossed");
    assert_eq!(manual.auto_compactions(), 0, "opted out");
    assert!(manual.compact() >= 1, "the delta stayed pending");

    // Compaction is content- and version-neutral, so both engines agree
    // on versions and on every answer.
    for rel in ["R", "S"] {
        assert_eq!(
            auto.relation_version(rel).unwrap(),
            manual.relation_version(rel).unwrap(),
            "auto-compaction must not move {rel}'s version"
        );
    }
    let opts = ExecOptions::default();
    assert_eq!(
        run(&auto, CHAIN, &opts).rows,
        run(&manual, CHAIN, &opts).rows
    );

    // And the plan cache stays warm across an auto-fold, exactly as it
    // does across a manual one. (The run above warmed the entry.)
    assert!(auto.prepare(CHAIN).unwrap().cache_hit(), "warm after run");
    auto.insert("R", int_rows(&[(30, 5), (31, 5), (32, 5), (33, 5)]))
        .unwrap();
    assert!(auto.auto_compactions() >= 2, "the big batch folds too");
    assert!(
        !auto.prepare(CHAIN).unwrap().cache_hit(),
        "the write itself invalidates once"
    );
    assert!(
        auto.prepare(CHAIN).unwrap().cache_hit(),
        "then warm — the auto-fold adds no extra invalidation"
    );
}

/// The hybrid bitset backend rides the same write path: forcing dense
/// leaves (or sorted) changes no answer across writes and compactions,
/// compaction re-selects the representation for the folded base, and the
/// `--explain` storage field reports what was selected.
#[test]
fn leaf_policy_is_observationally_silent_across_writes() {
    use minesweeper_join::storage::LeafPolicy;

    let policies = [LeafPolicy::Sorted, LeafPolicy::Auto, LeafPolicy::Dense];
    let engines: Vec<Engine> = policies
        .iter()
        .map(|&p| {
            let e = mutable_engine();
            e.set_leaf_policy(p);
            assert_eq!(e.leaf_policy(), p);
            e
        })
        .collect();

    // Densify R's first column (0..=40 contiguous), churn S, compact.
    let dense_rows: Vec<(i64, i64)> = (0..=40).map(|v| (v, 5)).collect();
    for e in &engines {
        e.insert("R", int_rows(&dense_rows)).unwrap();
        e.delete("S", int_rows(&[(9, 12)])).unwrap();
        e.insert("S", int_rows(&[(9, 13)])).unwrap();
        e.compact();
    }

    let mut option_sets = vec![
        ExecOptions::default(),
        ExecOptions::default().with_threads(2),
    ];
    for name in algorithm_names() {
        option_sets.push(ExecOptions::default().with_algo(name));
    }
    for opts in &option_sets {
        let baseline = run(&engines[0], CHAIN, opts);
        assert!(!baseline.rows.is_empty(), "the dense rows join");
        for (e, p) in engines.iter().zip(policies).skip(1) {
            let got = run(e, CHAIN, opts);
            assert_eq!(
                baseline.rows, got.rows,
                "policy {p:?} changed answers under {:?} threads={}",
                opts.algo, opts.threads
            );
        }
    }

    // Compaction re-selected the representation: the dense engine's
    // explain reports packed leaves, the sorted engine's reports none.
    let opts = ExecOptions::default();
    let sorted_ep = engines[0].prepare(CHAIN).unwrap().explain(&opts).unwrap();
    let dense_ep = engines[2].prepare(CHAIN).unwrap().explain(&opts).unwrap();
    let s = sorted_ep.storage.expect("engine explain fills storage");
    let d = dense_ep.storage.expect("engine explain fills storage");
    assert_eq!(s.leaf, "sorted");
    assert_eq!(s.dense_leaves, 0);
    assert_eq!(d.leaf, "dense");
    assert!(d.dense_leaves > 0, "0..=40 run selected after compaction");
    assert!(d.bitset_words > 0);

    // Switching a live engine's policy is content-neutral too.
    engines[2].set_leaf_policy(LeafPolicy::Sorted);
    assert_eq!(
        run(&engines[0], CHAIN, &opts).rows,
        run(&engines[2], CHAIN, &opts).rows
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random write interleavings: a sharded stream opened before the
    /// writes equals exact execution against its snapshot, and the
    /// written-to engine equals a fresh load of the final content — with
    /// a compaction thrown in to check it is observationally silent.
    #[test]
    fn random_writes_preserve_snapshots_and_equivalence(
        r0 in prop::collection::vec((0i64..8, 0i64..8), 1..12),
        s0 in prop::collection::vec((0i64..8, 0i64..8), 1..12),
        ins in prop::collection::vec((0i64..8, 0i64..8), 0..8),
        del in prop::collection::vec((0i64..8, 0i64..8), 0..8),
    ) {
        use std::collections::BTreeSet;

        let mut model_r: BTreeSet<(i64, i64)> = r0.iter().copied().collect();
        let model_s: BTreeSet<(i64, i64)> = s0.iter().copied().collect();
        let e = fresh_engine(
            &model_r.iter().copied().collect::<Vec<_>>(),
            &model_s.iter().copied().collect::<Vec<_>>(),
        );

        let opts = ExecOptions::default().with_threads(2);
        let before = run(&e, CHAIN, &opts);
        let stmt = e.prepare(CHAIN).unwrap();
        let mut stream = stmt.stream(&opts).unwrap();
        let first = stream.next();

        // Apply the random batches to engine and model alike.
        e.insert("R", int_rows(&ins)).unwrap();
        model_r.extend(ins.iter().copied());
        e.delete("R", int_rows(&del)).unwrap();
        for d in &del {
            model_r.remove(d);
        }
        e.compact();

        // The in-flight stream finishes against its snapshot. Streams
        // yield in GAO order, `execute` sorts in attribute order —
        // compare as sets of rows.
        let mut streamed: Vec<Vec<Value>> = Vec::new();
        streamed.extend(first);
        streamed.extend(&mut stream);
        streamed.sort();
        let mut expect_rows = before.rows.clone();
        expect_rows.sort();
        prop_assert_eq!(streamed, expect_rows);

        // The mutated engine equals a fresh load of the model.
        let fresh = fresh_engine(
            &model_r.iter().copied().collect::<Vec<_>>(),
            &model_s.iter().copied().collect::<Vec<_>>(),
        );
        for opts in [ExecOptions::default(), opts] {
            prop_assert_eq!(
                run(&e, CHAIN, &opts).rows,
                run(&fresh, CHAIN, &opts).rows
            );
        }
    }
}
