#!/usr/bin/env bash
# Doc-link check: fails when a markdown file references a repository
# path that does not exist. Two kinds of references are checked:
#
#   1. relative markdown link targets:   [text](docs/FOO.md)
#   2. backticked repo paths:            `crates/core/src/plan.rs`
#      (only tokens rooted at a known top-level directory are checked,
#      so prose like `cargo test` or `a/b` pseudo-paths are ignored)
#
# Usage: ci/check_docs.sh [FILE.md ...]   (defaults to docs/*.md,
# README.md, and ci/README.md, run from the repository root)

set -euo pipefail

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    files=(docs/*.md README.md ci/README.md)
fi

fail=0

check_path() {
    # $1 = markdown file, $2 = referenced path (relative to repo root or
    # to the markdown file's directory).
    local md="$1" ref="$2"
    ref="${ref%%#*}"          # drop fragment
    ref="${ref%/}"            # drop trailing slash
    [ -z "$ref" ] && return 0
    if [ -e "$ref" ] || [ -e "$(dirname "$md")/$ref" ]; then
        return 0
    fi
    echo "ERROR: $md references nonexistent path: $ref"
    fail=1
}

for md in "${files[@]}"; do
    [ -f "$md" ] || { echo "ERROR: no such file: $md"; fail=1; continue; }

    # 1. Relative markdown link targets (skip http(s):, mailto:, and
    #    pure-fragment links).
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) ;;
            *) check_path "$md" "$target" ;;
        esac
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')

    # 2. Backticked tokens rooted at a real top-level directory.
    while IFS= read -r token; do
        check_path "$md" "$token"
    done < <(grep -oE '`(crates|src|ci|docs|examples|tests|\.github)/[A-Za-z0-9_./-]+`' "$md" \
             | tr -d '`')
done

if [ "$fail" -ne 0 ]; then
    echo "doc check: FAILED"
    exit 1
fi
echo "doc check: OK (${#files[@]} file(s))"
