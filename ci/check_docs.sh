#!/usr/bin/env bash
# Doc-link check: fails when a markdown file references a repository
# path that does not exist, or when a design doc is unreachable. Three
# kinds of checks run:
#
#   1. relative markdown link targets:   [text](docs/FOO.md)
#   2. backticked repo paths:            `crates/core/src/plan.rs`
#      (only tokens rooted at a known top-level directory are checked,
#      so prose like `cargo test` or `a/b` pseudo-paths are ignored)
#   3. reachability: every docs/*.md must be linked from README.md,
#      directly or via the docs/README.md index (which itself must be
#      linked from README.md) — no orphaned design docs.
#
# Usage: ci/check_docs.sh [FILE.md ...]   (defaults to docs/*.md,
# README.md, and ci/README.md, run from the repository root; the
# reachability check always runs against the real README/docs set)

set -euo pipefail

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
    files=(docs/*.md README.md ci/README.md)
fi

fail=0

check_path() {
    # $1 = markdown file, $2 = referenced path (relative to repo root or
    # to the markdown file's directory).
    local md="$1" ref="$2"
    ref="${ref%%#*}"          # drop fragment
    ref="${ref%/}"            # drop trailing slash
    [ -z "$ref" ] && return 0
    if [ -e "$ref" ] || [ -e "$(dirname "$md")/$ref" ]; then
        return 0
    fi
    echo "ERROR: $md references nonexistent path: $ref"
    fail=1
}

# True when $1 contains a markdown link whose target resolves to the
# file $2 (targets are resolved relative to $1's directory and to the
# repository root, fragments dropped).
links_to() {
    local md="$1" want="$2" target
    while IFS= read -r target; do
        target="${target%%#*}"
        target="${target%/}"
        [ -z "$target" ] && continue
        for candidate in "$target" "$(dirname "$md")/$target"; do
            if [ -e "$candidate" ] &&
               [ "$(realpath -m "$candidate")" = "$(realpath -m "$want")" ]; then
                return 0
            fi
        done
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
    return 1
}

for md in "${files[@]}"; do
    [ -f "$md" ] || { echo "ERROR: no such file: $md"; fail=1; continue; }

    # 1. Relative markdown link targets (skip http(s):, mailto:, and
    #    pure-fragment links).
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) ;;
            *) check_path "$md" "$target" ;;
        esac
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')

    # 2. Backticked tokens rooted at a real top-level directory.
    while IFS= read -r token; do
        check_path "$md" "$token"
    done < <(grep -oE '`(crates|src|ci|docs|examples|tests|\.github)/[A-Za-z0-9_./-]+`' "$md" \
             | tr -d '`')
done

# 3. Reachability: every design doc must be discoverable from README.md.
if [ -f README.md ] && [ -d docs ]; then
    index=docs/README.md
    if [ -f "$index" ] && ! links_to README.md "$index"; then
        echo "ERROR: README.md does not link the doc index $index"
        fail=1
    fi
    for doc in docs/*.md; do
        [ "$doc" = "$index" ] && continue
        if links_to README.md "$doc"; then
            continue
        fi
        if [ -f "$index" ] && links_to "$index" "$doc"; then
            continue
        fi
        echo "ERROR: $doc is unreachable (not linked from README.md or $index)"
        fail=1
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "doc check: FAILED"
    exit 1
fi
echo "doc check: OK (${#files[@]} file(s))"
